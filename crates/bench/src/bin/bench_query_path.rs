//! Measures query-path throughput on the FR-079 corridor dataset and
//! writes `BENCH_query_path.json` (in the current directory) — the
//! read-side mirror of `bench_batch_update`.
//!
//! Three stages are reported:
//!
//! - **pool** — the persistent worker pool behind the parallel read
//!   rows: `pool_warmup` is the cold spawn cost; the `pool_dispatch_ns`
//!   top-level figure is the steady-state per-task dispatch cost.
//! - **cast_ray** — query rays (virtual-bumper / planner look-ahead)
//!   cast from the corridor trajectory: `cast_ray` per probe (a full
//!   root-to-leaf descent per DDA step) vs one `DescentCursor` driving
//!   every ray (consecutive steps re-descend only below the deepest
//!   common ancestor) vs the batched `cast_rays` entry point, sequential
//!   and sharded (on a 1-CPU container the sharded row measures thread
//!   overhead; on multi-core hosts it shows the scaling).
//! - **point_query** — randomly ordered single-voxel classifications
//!   (collision checks): per-probe `occupancy` vs a raw cursor fed the
//!   unsorted stream vs `query_batch` (Morton sort + coalescing + one
//!   cursor sweep) vs `query_batch_parallel`, the latter swept over
//!   1/2/4/8 shards on the persistent pool and re-run on the legacy
//!   per-call `thread::scope` dispatch (`sharded_{n}_scoped`).
//!
//! Usage: `cargo run --release -p omu-bench --bin bench_query_path
//! [-- --scale 0.1]`.

use std::time::Instant;

use omu_bench::RunOptions;
use omu_datasets::DatasetKind;
use omu_geometry::{Point3, Scan, VoxelKey};
use omu_octree::{OctreeF32, ParallelDispatch, WorkerPool};
use omu_raycast::IntegrationMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Measurement {
    stage: &'static str,
    engine: String,
    ops: u64,
    seconds: f64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.seconds
    }
}

/// Best-of-5 timing of `run`, which returns the operation count.
fn measure(stage: &'static str, engine: &str, mut run: impl FnMut() -> u64) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let start = Instant::now();
        let ops = run();
        let seconds = start.elapsed().as_secs_f64();
        let m = Measurement {
            stage,
            engine: engine.to_owned(),
            ops,
            seconds,
        };
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("five repetitions ran")
}

fn json_entry(m: &Measurement) -> String {
    format!(
        concat!(
            "    {{ \"stage\": \"{}\", \"engine\": \"{}\", \"ops\": {}, ",
            "\"seconds\": {:.6}, \"ops_per_sec\": {:.0} }}"
        ),
        m.stage,
        m.engine,
        m.ops,
        m.seconds,
        m.ops_per_sec(),
    )
}

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(0.1);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();
    let scans: Vec<Scan> = dataset.scans().collect();
    eprintln!(
        "corridor @ scale {scale}: {} scans, resolution {} m",
        scans.len(),
        spec.resolution
    );

    // Build the corridor map once; every measurement below is read-only.
    let mut tree = OctreeF32::new(spec.resolution).expect("valid resolution");
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    for scan in &scans {
        tree.insert_scan_batched(scan)
            .expect("scans stay in the map");
    }
    eprintln!("map built: {} nodes", tree.num_nodes());

    // Query-ray workload: a fan of look-ahead rays from every scan pose
    // (the planner's virtual bumper sweeping the corridor).
    let rays: Vec<(Point3, Point3)> = scans
        .iter()
        .flat_map(|s| {
            (0..512).map(|i| {
                let a = i as f64 * (std::f64::consts::TAU / 512.0);
                (
                    s.origin,
                    Point3::new(a.cos(), a.sin(), 0.02 * (i % 5) as f64),
                )
            })
        })
        .collect();
    let max_range = spec.max_range;

    // Point-query workload: randomly ordered voxel probes over the
    // mapped region (collision checks arrive unsorted).
    let (lo, hi) = tree
        .snapshot()
        .iter()
        .fold((u16::MAX, u16::MIN), |(lo, hi), &(k, _, _)| {
            (lo.min(k.x).min(k.y).min(k.z), hi.max(k.x).max(k.y).max(k.z))
        });
    let mut rng = StdRng::seed_from_u64(0x9E37);
    let keys: Vec<VoxelKey> = (0..200_000)
        .map(|_| {
            VoxelKey::new(
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
            )
        })
        .collect();

    let mut results = Vec::new();

    // Pool stage: cold warmup, then steady-state dispatch cost (the
    // overhead the pooled read rows pay per chunk task). The warmup row
    // reports seconds and the dispatch cost only — a throughput figure
    // from 8 no-op tasks would be meaningless next to the probe rows.
    let pool_warmup = measure("pool", "pool_warmup", || {
        let pool = WorkerPool::new(8);
        pool.scope(|s| {
            for i in 0..8 {
                s.spawn_on(i, || {});
            }
        });
        8
    });
    let pool_dispatch_ns = {
        let pool = WorkerPool::new(8);
        pool.scope(|s| {
            for i in 0..8 {
                s.spawn_on(i, || {});
            }
        });
        const SCOPES: u32 = 2_000;
        let start = Instant::now();
        for _ in 0..SCOPES {
            pool.scope(|s| {
                for i in 0..8 {
                    s.spawn_on(i, || {});
                }
            });
        }
        start.elapsed().as_nanos() as f64 / (SCOPES as f64 * 8.0)
    };
    eprintln!("pool steady-state dispatch: {pool_dispatch_ns:.0} ns/task");

    results.push(measure("cast_ray", "per_probe", || {
        for &(o, d) in &rays {
            tree.cast_ray(o, d, max_range, true).expect("valid ray");
        }
        rays.len() as u64
    }));
    results.push(measure("cast_ray", "cursor", || {
        let mut cursor = tree.query_cursor();
        for &(o, d) in &rays {
            cursor.cast_ray(o, d, max_range, true).expect("valid ray");
        }
        rays.len() as u64
    }));
    {
        let mut tree = tree.clone();
        results.push(measure("cast_ray", "batched", || {
            tree.cast_rays(&rays, max_range, true, 1)
                .expect("valid rays");
            rays.len() as u64
        }));
        results.push(measure("cast_ray", "batched_parallel", || {
            tree.cast_rays(&rays, max_range, true, 0)
                .expect("valid rays");
            rays.len() as u64
        }));
    }

    results.push(measure("point_query", "per_probe", || {
        for &k in &keys {
            std::hint::black_box(tree.occupancy(k));
        }
        keys.len() as u64
    }));
    results.push(measure("point_query", "cursor_unsorted", || {
        let mut cursor = tree.query_cursor();
        for &k in &keys {
            std::hint::black_box(cursor.occupancy(k));
        }
        keys.len() as u64
    }));
    {
        let mut tree = tree.clone();
        results.push(measure("point_query", "batched", || {
            std::hint::black_box(tree.query_batch(&keys));
            keys.len() as u64
        }));
        results.push(measure("point_query", "batched_parallel", || {
            std::hint::black_box(tree.query_batch_parallel(&keys, 0));
            keys.len() as u64
        }));
        // Shard sweep, pooled vs per-call thread::scope dispatch.
        for (dispatch, suffix) in [
            (ParallelDispatch::Pooled, ""),
            (ParallelDispatch::ScopedThreads, "_scoped"),
        ] {
            tree.set_parallel_dispatch(dispatch);
            for shards in [1usize, 2, 4, 8] {
                results.push(measure(
                    "point_query",
                    &format!("sharded_{shards}{suffix}"),
                    || {
                        std::hint::black_box(tree.query_batch_parallel(&keys, shards));
                        keys.len() as u64
                    },
                ));
            }
        }
        tree.set_parallel_dispatch(ParallelDispatch::Pooled);
    }

    for m in &results {
        eprintln!(
            "  {:<12} {:<17} {:>12.0} ops/s  ({:.3} s)",
            m.stage,
            m.engine,
            m.ops_per_sec(),
            m.seconds
        );
    }

    // Prefix-reuse telemetry for the headline cursor row.
    let reuse = {
        let mut cursor = tree.query_cursor();
        for &(o, d) in &rays {
            cursor.cast_ray(o, d, max_range, true).expect("valid ray");
        }
        let c = *cursor.counters();
        eprintln!(
            "cast_ray cursor: {} probes, prefix reuse {:.1} %",
            c.probes,
            c.prefix_reuse_rate() * 100.0
        );
        c
    };

    let rate_of = |engine: &str| {
        results
            .iter()
            .find(|m| m.stage == "cast_ray" && m.engine == engine)
            .expect("cast_ray row present")
            .ops_per_sec()
    };
    let per_probe_rate = rate_of("per_probe");
    let cursor_rate = rate_of("cursor");
    eprintln!(
        "cast_ray cursor speedup: {:.2}x",
        cursor_rate / per_probe_rate
    );

    // The map the read paths traverse: sibling-row arena footprint.
    let mem = tree.memory_stats();
    eprintln!(
        "map memory: {} nodes in {} rows, {} heap bytes = {:.2} B/node",
        mem.live_nodes,
        mem.live_rows,
        mem.arena_bytes,
        mem.bytes_per_node(),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"query_path\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"scans\": {},\n",
            "  \"resolution_m\": {},\n",
            "  \"rays\": {},\n",
            "  \"ray_probes\": {},\n",
            "  \"point_probes\": {},\n",
            "  \"cast_ray_cursor_speedup_vs_per_probe\": {:.2},\n",
            "  \"cast_ray_prefix_reuse_rate\": {:.4},\n",
            "  \"pool_dispatch_ns\": {:.1},\n",
            "  \"memory\": {{\n",
            "    \"live_nodes\": {},\n",
            "    \"live_rows\": {},\n",
            "    \"heap_bytes\": {},\n",
            "    \"bytes_per_node\": {:.2}\n",
            "  }},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        kind.name(),
        scale,
        scans.len(),
        spec.resolution,
        rays.len(),
        reuse.probes,
        keys.len(),
        cursor_rate / per_probe_rate,
        reuse.prefix_reuse_rate(),
        pool_dispatch_ns,
        mem.live_nodes,
        mem.live_rows,
        mem.arena_bytes,
        mem.bytes_per_node(),
        std::iter::once(format!(
            concat!(
                "    {{ \"stage\": \"pool\", \"engine\": \"pool_warmup\", ",
                "\"seconds\": {:.6}, \"pool_dispatch_ns\": {:.1} }}"
            ),
            pool_warmup.seconds, pool_dispatch_ns,
        ))
        .chain(results.iter().map(json_entry))
        .collect::<Vec<_>>()
        .join(",\n"),
    );
    std::fs::write("BENCH_query_path.json", &json).expect("write BENCH_query_path.json");
    println!("{json}");
    eprintln!("wrote BENCH_query_path.json");
}
