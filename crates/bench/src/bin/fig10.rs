//! Regenerates Fig. 10 (runtime breakdown, CPU vs accelerator).
use omu_bench::{reports, run_all, RunOptions};
fn main() {
    let runs = run_all(RunOptions::from_env());
    reports::print_fig10(&runs);
}
