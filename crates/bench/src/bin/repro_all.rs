//! Regenerates every table and figure of the paper in one run.
//!
//! `cargo run --release -p omu-bench --bin repro_all` (add `--full` for
//! full-fidelity scans; default scales finish in minutes).
use omu_bench::{reports, run_all, RunOptions};
use omu_core::{area_model, floorplan_ascii, OmuConfig};

fn main() {
    let opts = RunOptions::from_env();
    reports::print_table1();
    let runs = run_all(opts);
    reports::print_table2(&runs);
    reports::print_fig3(&runs);
    println!("{}", floorplan_ascii(&OmuConfig::default()));
    println!("{}", area_model(&OmuConfig::default()));
    reports::print_fig9(&runs);
    reports::print_table3(&runs);
    reports::print_table4(&runs);
    reports::print_table5(&runs);
    reports::print_fig10(&runs);
    for r in &runs {
        println!(
            "{}: OMU power {:.1} mW ({:.0} % SRAM), T-Mem rows/bank {}, utilization {:.0} %, imbalance {:.2}",
            r.kind.name(),
            r.accel.power_mw,
            r.accel.sram_power_share * 100.0,
            r.accel_rows_per_bank,
            r.accel.sram_utilization * 100.0,
            r.accel.load_imbalance
        );
    }
    println!("\npaper anchors: 250.8 mW @ 1 GHz, 91 % SRAM power, 63 FPS real-time");
}
