//! Measures what durability costs the ingest path — WAL framing +
//! fsync per batch, snapshot checkpoints — and how fast recovery
//! replays a cold log. Writes `BENCH_durability.json` (in the current
//! directory).
//!
//! Three ingest variants stream the corridor dataset through a
//! [`MapService`](omu_map::MapService) writer:
//!
//! - **wal_off** — no durability configured: the in-memory baseline.
//! - **wal_on** — `DurabilityPolicy::Manual`: every drained batch is
//!   framed, CRC'd, appended and fsynced before it is applied, but no
//!   checkpoints are cut. CI holds this within 1.10× of `wal_off`:
//!   batch fusion amortizes the sync, so the WAL must stay almost free.
//! - **ckpt_on** — `DurabilityPolicy::EveryNEpochs(8)`: checkpoints are
//!   serialized on the pinned publish snapshot and written on the
//!   dedicated checkpoint thread, so CI holds this within 1.10× of
//!   `wal_on` — the writer never waits for a checkpoint.
//!
//! The **recovery** stage then times [`MapService::recover`] over the
//! directory a `wal_on` run leaves behind: a full-log replay, the
//! worst case (a checkpoint would only shrink it).
//!
//! Usage: `cargo run --release -p omu-bench --bin bench_durability
//! [-- --scale 0.1]`.

use std::path::PathBuf;
use std::time::Instant;

use omu_bench::RunOptions;
use omu_datasets::DatasetKind;
use omu_geometry::Scan;
use omu_map::{DurabilityPolicy, MapBuilder, MapService};

/// Timed repetitions per variant; the best (least-interfered) run wins.
const REPS: usize = 5;

fn temp_dir(tag: &str, rep: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omu_bench_durability_{tag}_{rep}_{}",
        std::process::id()
    ))
}

/// Streams every scan through a service writer and returns the wall
/// time from first ingest to a completed shutdown (flush + WAL sync +
/// checkpoint-thread join all included).
fn run_ingest(
    scans: &[Scan],
    resolution: f64,
    durability: Option<(&PathBuf, DurabilityPolicy)>,
) -> f64 {
    let mut builder = MapBuilder::new(resolution);
    if let Some((dir, policy)) = durability {
        builder = builder.durability(dir, policy);
    }
    let service = MapService::spawn(builder).expect("service spawns");
    let start = Instant::now();
    for scan in scans {
        service.ingest(scan.clone()).expect("ingest");
    }
    service.flush().expect("drain writer");
    service.shutdown().expect("clean shutdown");
    start.elapsed().as_secs_f64()
}

fn best_of<F: FnMut(usize) -> f64>(mut run: F) -> f64 {
    (0..REPS).map(&mut run).fold(f64::INFINITY, f64::min)
}

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(0.1);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();
    let scans: Vec<Scan> = dataset.scans().collect();
    eprintln!(
        "corridor @ scale {scale}: {} scans, resolution {} m",
        scans.len(),
        spec.resolution
    );

    let wal_off = best_of(|_| run_ingest(&scans, spec.resolution, None));

    let wal_on = best_of(|rep| {
        let dir = temp_dir("wal", rep);
        let _ = std::fs::remove_dir_all(&dir);
        let secs = run_ingest(
            &scans,
            spec.resolution,
            Some((&dir, DurabilityPolicy::Manual)),
        );
        let _ = std::fs::remove_dir_all(&dir);
        secs
    });

    let ckpt_on = best_of(|rep| {
        let dir = temp_dir("ckpt", rep);
        let _ = std::fs::remove_dir_all(&dir);
        let secs = run_ingest(
            &scans,
            spec.resolution,
            Some((&dir, DurabilityPolicy::EveryNEpochs(8))),
        );
        let _ = std::fs::remove_dir_all(&dir);
        secs
    });

    // Recovery: replay the full WAL a Manual-policy run left behind.
    // Each rep rebuilds the directory (untimed) because recovery itself
    // folds the result into a checkpoint, which would make a second
    // pass over the same directory trivially cheap.
    let mut replayed = 0u64;
    let recovery = best_of(|rep| {
        let dir = temp_dir("recover", rep);
        let _ = std::fs::remove_dir_all(&dir);
        run_ingest(
            &scans,
            spec.resolution,
            Some((&dir, DurabilityPolicy::Manual)),
        );
        let start = Instant::now();
        let (service, report) =
            MapService::recover(dir.clone(), MapBuilder::new(spec.resolution)).expect("recovers");
        let secs = start.elapsed().as_secs_f64();
        replayed = report.replayed_batches;
        assert!(!report.truncated_tail, "clean shutdown left a torn tail");
        service.shutdown().expect("clean shutdown");
        let _ = std::fs::remove_dir_all(&dir);
        secs
    });

    let scans_n = scans.len() as f64;
    let wal_ratio = wal_on / wal_off;
    let ckpt_ratio = ckpt_on / wal_on;
    eprintln!(
        "wal_off : {wal_off:.4} s ({:.0} scans/s)",
        scans_n / wal_off
    );
    eprintln!(
        "wal_on  : {wal_on:.4} s ({:.0} scans/s, {wal_ratio:.3}x wal_off)",
        scans_n / wal_on
    );
    eprintln!(
        "ckpt_on : {ckpt_on:.4} s ({:.0} scans/s, {ckpt_ratio:.3}x wal_on)",
        scans_n / ckpt_on
    );
    eprintln!("recovery: {recovery:.4} s ({replayed} batches replayed)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"durability\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"scans\": {},\n",
            "  \"resolution_m\": {},\n",
            "  \"wal_off_seconds\": {:.6},\n",
            "  \"wal_on_seconds\": {:.6},\n",
            "  \"ckpt_on_seconds\": {:.6},\n",
            "  \"wal_on_vs_wal_off\": {:.4},\n",
            "  \"ckpt_on_vs_wal_on\": {:.4},\n",
            "  \"recovery_seconds\": {:.6},\n",
            "  \"recovery_replayed_batches\": {},\n",
            "  \"recovery_batches_per_sec\": {:.0}\n",
            "}}\n"
        ),
        kind.name(),
        scale,
        scans.len(),
        spec.resolution,
        wal_off,
        wal_on,
        ckpt_on,
        wal_ratio,
        ckpt_ratio,
        recovery,
        replayed,
        replayed as f64 / recovery,
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("{json}");
    eprintln!("wrote BENCH_durability.json");
}
