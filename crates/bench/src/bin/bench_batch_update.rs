//! Measures scalar vs batched voxel-update throughput on the FR-079
//! corridor dataset and writes `BENCH_batch_update.json` (in the current
//! directory) to seed the repo's performance trajectory.
//!
//! Four stages are reported:
//!
//! - **pool** — the persistent worker pool itself: `pool_warmup` is the
//!   cold cost of creating a pool and running its first 8-task scope
//!   (spawning the workers); the `pool_dispatch_ns` top-level figure is
//!   the steady-state per-task dispatch cost on a warmed pool.
//! - **update_engine** — ray casting is precomputed; the measurement is
//!   purely the tree-update stage (the paper's "voxel update" workload,
//!   and what the batch engine accelerates): `update_key` per update vs
//!   one Morton-sorted `apply_update_batch` per scan vs the
//!   subtree-sharded `apply_update_batch_parallel` swept over 1/2/4/8
//!   shards on the persistent pool (on a 1-CPU container the sweep
//!   measures dispatch overhead; on multi-core hosts it shows the
//!   scaling). `sharded_{n}_scoped` rows re-run the same sweep on the
//!   legacy per-call `thread::scope` dispatch, so the pool's win over
//!   spawn-per-batch stays a recorded number.
//! - **front_end** — ray casting alone, no tree: the scalar DDA
//!   (`scalar_dda`) vs the 8-lane SoA packet stepper (`packet`) vs the
//!   packet stepper behind the scan pipeline (`packet_pipeline`). The
//!   two front ends emit bit-identical update streams, so the ratio is
//!   the pure data-parallel win.
//! - **end_to_end** — full `insert_scan` vs `insert_scan_batched` vs
//!   `insert_scan_parallel`, including ray casting (identical across
//!   engines, and since the packet front end is the default it is what
//!   these rows exercise; on a single-CPU container the parallel path
//!   runs the same inline code below the fan-out threshold).
//!
//! The JSON also records the sibling-row arena's memory footprint
//! (`heap_bytes`, `bytes_per_node`) next to the block-arena layout's
//! measured baseline, so the cache-compactness claim stays a recorded
//! number rather than folklore.
//!
//! Usage: `cargo run --release -p omu-bench --bin bench_batch_update
//! [-- --scale 0.1]`.

use std::time::Instant;

use omu_bench::RunOptions;
use omu_datasets::DatasetKind;
use omu_geometry::Scan;
use omu_octree::{OctreeF32, ParallelDispatch, WorkerPool};
use omu_raycast::{FrontEnd, IntegrationMode, ScanIntegrator, ScanPipeline, VoxelUpdate};

struct Measurement {
    stage: &'static str,
    engine: String,
    updates: u64,
    seconds: f64,
    nodes: usize,
}

impl Measurement {
    fn updates_per_sec(&self) -> f64 {
        self.updates as f64 / self.seconds
    }
}

/// Best-of-5 timing of `run`, which returns (updates, end node count).
fn measure(
    stage: &'static str,
    engine: &str,
    mut run: impl FnMut() -> (u64, usize),
) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let start = Instant::now();
        let (updates, nodes) = run();
        let seconds = start.elapsed().as_secs_f64();
        let m = Measurement {
            stage,
            engine: engine.to_owned(),
            updates,
            seconds,
            nodes,
        };
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("five repetitions ran")
}

fn fresh_tree(resolution: f64, max_range: f64) -> OctreeF32 {
    let mut t = OctreeF32::new(resolution).expect("valid resolution");
    t.set_integration_mode(IntegrationMode::Raywise);
    t.set_max_range(Some(max_range));
    t
}

fn json_entry(m: &Measurement) -> String {
    format!(
        concat!(
            "    {{ \"stage\": \"{}\", \"engine\": \"{}\", \"updates\": {}, ",
            "\"seconds\": {:.6}, \"updates_per_sec\": {:.0}, \"tree_nodes\": {} }}"
        ),
        m.stage,
        m.engine,
        m.updates,
        m.seconds,
        m.updates_per_sec(),
        m.nodes,
    )
}

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(0.1);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();
    let scans: Vec<Scan> = dataset.scans().collect();
    eprintln!(
        "corridor @ scale {scale}: {} scans, resolution {} m",
        scans.len(),
        spec.resolution
    );

    // Precompute each scan's update batch so the update_engine stage
    // times tree work only.
    let mut integrator = ScanIntegrator::new(
        *fresh_tree(spec.resolution, spec.max_range).converter(),
        Some(spec.max_range),
        IntegrationMode::Raywise,
    );
    let batches: Vec<Vec<VoxelUpdate>> = scans
        .iter()
        .map(|s| {
            let mut v = Vec::new();
            integrator
                .integrate_into(s, &mut v)
                .expect("scans stay inside the map");
            v
        })
        .collect();
    let total_updates: u64 = batches.iter().map(|b| b.len() as u64).sum();
    eprintln!("{total_updates} voxel updates precomputed");

    let mut results = Vec::new();

    // Pool stage: cold warmup (pool creation + first 8-task scope, which
    // spawns the workers), then steady-state dispatch cost on a warmed
    // pool — the per-task overhead every pooled engine row below pays
    // instead of a thread spawn. The warmup row reports seconds and the
    // steady-state dispatch cost only: a throughput figure computed from
    // 8 no-op tasks would be meaningless next to the real engine rows.
    let pool_warmup = measure("pool", "pool_warmup", || {
        let pool = WorkerPool::new(8);
        pool.scope(|s| {
            for i in 0..8 {
                s.spawn_on(i, || {});
            }
        });
        (8, 0)
    });
    let pool_dispatch_ns = {
        let pool = WorkerPool::new(8);
        // Warm: spawn all workers before timing.
        pool.scope(|s| {
            for i in 0..8 {
                s.spawn_on(i, || {});
            }
        });
        const SCOPES: u32 = 2_000;
        let start = Instant::now();
        for _ in 0..SCOPES {
            pool.scope(|s| {
                for i in 0..8 {
                    s.spawn_on(i, || {});
                }
            });
        }
        start.elapsed().as_nanos() as f64 / (SCOPES as f64 * 8.0)
    };
    eprintln!("pool steady-state dispatch: {pool_dispatch_ns:.0} ns/task");

    results.push(measure("update_engine", "scalar", || {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        for batch in &batches {
            for u in batch {
                tree.update_key(u.key, u.hit);
            }
        }
        (total_updates, tree.num_nodes())
    }));
    results.push(measure("update_engine", "batched", || {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        for batch in &batches {
            tree.apply_update_batch(batch);
        }
        (total_updates, tree.num_nodes())
    }));
    // Shard-count sweep for the subtree-sharded parallel apply — once on
    // the persistent pool (the default), once on the legacy per-call
    // `thread::scope` dispatch, so the recorded JSON carries the
    // scoped-vs-pooled comparison at every width.
    for (dispatch, suffix) in [
        (ParallelDispatch::Pooled, ""),
        (ParallelDispatch::ScopedThreads, "_scoped"),
    ] {
        for shards in [1usize, 2, 4, 8] {
            results.push(measure(
                "update_engine",
                &format!("sharded_{shards}{suffix}"),
                || {
                    let mut tree = fresh_tree(spec.resolution, spec.max_range);
                    tree.set_parallel_dispatch(dispatch);
                    for batch in &batches {
                        tree.apply_update_batch_parallel(batch, shards);
                    }
                    (total_updates, tree.num_nodes())
                },
            ));
        }
    }

    // Front-end stage: ray casting alone, no tree. Both integrators emit
    // bit-identical update streams; the ratio is the packet win.
    let conv = *fresh_tree(spec.resolution, spec.max_range).converter();
    let mut scratch: Vec<VoxelUpdate> = Vec::new();
    for (name, fe) in [
        ("scalar_dda", FrontEnd::Scalar),
        ("packet", FrontEnd::Packet),
    ] {
        let mut it = ScanIntegrator::with_front_end(
            conv,
            Some(spec.max_range),
            IntegrationMode::Raywise,
            fe,
        );
        results.push(measure("front_end", name, || {
            let mut n = 0u64;
            for s in &scans {
                scratch.clear();
                let st = it.integrate_into(s, &mut scratch).expect("in-map scan");
                n += st.total_updates();
            }
            (n, 0)
        }));
        if fe == FrontEnd::Packet {
            let ps = it.packet_stats();
            eprintln!(
                "packet lane occupancy: {:.3} ({} packets, {} supersteps)",
                ps.lane_occupancy(),
                ps.packets,
                ps.supersteps
            );
        }
    }
    {
        let mut pipe = ScanPipeline::with_front_end(
            conv,
            Some(spec.max_range),
            IntegrationMode::Raywise,
            0,
            FrontEnd::Packet,
        );
        results.push(measure("front_end", "packet_pipeline", || {
            let mut n = 0u64;
            for s in &scans {
                scratch.clear();
                let st = pipe
                    .integrate_into(s.origin, s.cloud.points(), &mut scratch)
                    .expect("in-map scan");
                n += st.total_updates();
            }
            (n, 0)
        }));
    }

    results.push(measure("end_to_end", "scalar", || {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        let n: u64 = scans
            .iter()
            .map(|s| tree.insert_scan(s).unwrap().total_updates())
            .sum();
        (n, tree.num_nodes())
    }));
    results.push(measure("end_to_end", "batched", || {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        let n: u64 = scans
            .iter()
            .map(|s| tree.insert_scan_batched(s).unwrap().total_updates())
            .sum();
        (n, tree.num_nodes())
    }));
    results.push(measure("end_to_end", "batched_parallel", || {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        let n: u64 = scans
            .iter()
            .map(|s| tree.insert_scan_parallel(s, 0).unwrap().total_updates())
            .sum();
        (n, tree.num_nodes())
    }));

    // Memory footprint of the sibling-row arena on the finished map,
    // against the block-arena layout's measured baseline on this same
    // workload (19.24 B/node at scale 0.1, PR 2–4 layout).
    const BLOCK_ARENA_BYTES_PER_NODE: f64 = 19.24;
    let mem = {
        let mut tree = fresh_tree(spec.resolution, spec.max_range);
        for batch in &batches {
            tree.apply_update_batch(batch);
        }
        tree.memory_stats()
    };
    eprintln!(
        "memory: {} nodes in {} rows, {} heap bytes = {:.2} B/node \
         (block arena measured {BLOCK_ARENA_BYTES_PER_NODE} B/node)",
        mem.live_nodes,
        mem.live_rows,
        mem.arena_bytes,
        mem.bytes_per_node(),
    );

    eprintln!(
        "  {:<14} {:<17} warmup {:.6} s, dispatch {pool_dispatch_ns:.1} ns/task",
        pool_warmup.stage, pool_warmup.engine, pool_warmup.seconds,
    );
    for m in &results {
        eprintln!(
            "  {:<14} {:<17} {:>12.0} updates/s  ({:.3} s, {} nodes)",
            m.stage,
            m.engine,
            m.updates_per_sec(),
            m.seconds,
            m.nodes
        );
    }

    let rate_of = |stage: &str, engine: &str| {
        results
            .iter()
            .find(|m| m.stage == stage && m.engine == engine)
            .expect("measured stage/engine")
            .updates_per_sec()
    };
    let scalar_update_rate = rate_of("update_engine", "scalar");
    let batched_update_rate = rate_of("update_engine", "batched");
    eprintln!(
        "update_engine speedup: {:.2}x",
        batched_update_rate / scalar_update_rate
    );
    let front_end_speedup = rate_of("front_end", "packet") / rate_of("front_end", "scalar_dda");
    eprintln!("front_end packet speedup vs scalar DDA: {front_end_speedup:.2}x");
    eprintln!(
        "pooled sharded_8 vs sharded_1: {:.3}x, vs batched: {:.3}x, vs scoped sharded_8: {:.3}x",
        rate_of("update_engine", "sharded_8") / rate_of("update_engine", "sharded_1"),
        rate_of("update_engine", "sharded_8") / batched_update_rate,
        rate_of("update_engine", "sharded_8") / rate_of("update_engine", "sharded_8_scoped"),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"batch_update\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"scans\": {},\n",
            "  \"resolution_m\": {},\n",
            "  \"total_updates\": {},\n",
            "  \"update_engine_speedup_vs_scalar\": {:.2},\n",
            "  \"front_end_speedup_vs_scalar_dda\": {:.2},\n",
            "  \"pool_dispatch_ns\": {:.1},\n",
            "  \"memory\": {{\n",
            "    \"live_nodes\": {},\n",
            "    \"live_rows\": {},\n",
            "    \"heap_bytes\": {},\n",
            "    \"bytes_per_node\": {:.2},\n",
            "    \"block_arena_bytes_per_node\": {:.2},\n",
            "    \"bytes_per_node_reduction\": {:.4}\n",
            "  }},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        kind.name(),
        scale,
        scans.len(),
        spec.resolution,
        total_updates,
        batched_update_rate / scalar_update_rate,
        front_end_speedup,
        pool_dispatch_ns,
        mem.live_nodes,
        mem.live_rows,
        mem.arena_bytes,
        mem.bytes_per_node(),
        BLOCK_ARENA_BYTES_PER_NODE,
        1.0 - mem.bytes_per_node() / BLOCK_ARENA_BYTES_PER_NODE,
        std::iter::once(format!(
            concat!(
                "    {{ \"stage\": \"pool\", \"engine\": \"pool_warmup\", ",
                "\"seconds\": {:.6}, \"pool_dispatch_ns\": {:.1} }}"
            ),
            pool_warmup.seconds, pool_dispatch_ns,
        ))
        .chain(results.iter().map(json_entry))
        .collect::<Vec<_>>()
        .join(",\n"),
    );
    std::fs::write("BENCH_batch_update.json", &json).expect("write BENCH_batch_update.json");
    println!("{json}");
    eprintln!("wrote BENCH_batch_update.json");
}
