//! Ablation: per-PE in-flight window (the voxel queues of Fig. 7).
//!
//! Consecutive cells of one ray target the same first-level branch, so
//! per-PE traffic is bursty. The window bounds how much of that burst is
//! in flight at one PE; since a busy PE is limited by its total service
//! time either way, the window moves *waiting* (shared-queue residency),
//! not end-to-end latency — which is exactly why the paper can leave its
//! queue sizes unspecified.
use omu_bench::table::fmt_f;
use omu_bench::{runner::default_scale, RunOptions, TextTable};
use omu_core::{run_accelerator_with_engine, OmuConfig};
use omu_datasets::DatasetKind;

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(default_scale(kind) / 2.0);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();

    println!(
        "voxel-queue capacity ablation on {} (scale {scale}, {} engine):",
        kind.name(),
        opts.engine
    );
    let mut t = TextTable::new([
        "queue capacity",
        "latency (s)",
        "front-end stall cycles",
        "FPS",
    ]);
    for capacity in [4usize, 16, 64, 512, 4096] {
        let config = OmuConfig::builder()
            .voxel_queue_capacity(capacity)
            .rows_per_bank(1 << 16)
            .resolution(spec.resolution)
            .max_range(Some(spec.max_range))
            .build()
            .unwrap();
        let (_, s) =
            run_accelerator_with_engine(config, dataset.scans(), opts.engine.update_engine())
                .unwrap();
        t.row([
            capacity.to_string(),
            fmt_f(s.latency_s),
            s.stall_cycles.to_string(),
            fmt_f(s.fps),
        ]);
    }
    println!("{t}");
}
