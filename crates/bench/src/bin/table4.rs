//! Regenerates Table IV (throughput comparison).
use omu_bench::{reports, run_all, RunOptions};
fn main() {
    let runs = run_all(RunOptions::from_env());
    reports::print_table4(&runs);
}
