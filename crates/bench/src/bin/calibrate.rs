//! Calibration pass: fits the CPU cost models and checks the accelerator
//! technology constants against the paper's anchors.
//!
//! Runs the three datasets, fits one scale factor per runtime category to
//! the paper's Table II totals and Fig. 3 shares (see
//! `omu_cpumodel::fit`), fits the A57 global factor to Table III, and
//! reports the accelerator's modeled power against the 250.8 mW / 91 %
//! SRAM anchor. The fitted constants are meant to be pasted into
//! `omu-cpumodel/src/platforms.rs` / `omu-simhw/src/tech12nm.rs`.

use omu_bench::table::fmt_f;
use omu_bench::{run_all, RunOptions, TextTable};
use omu_cpumodel::fit::{apply_scales, fit_categories, CalibrationTarget};
use omu_cpumodel::CpuCostModel;

fn main() {
    let opts = RunOptions::from_env();
    let runs = run_all(opts);

    // --- Fit the i9 per-category scales. ---
    let counters: Vec<_> = runs
        .iter()
        .map(|r| {
            // Scale counters up to the full dataset so targets and predictions
            // are in the same units.
            let mut c = r.counters;
            let f = r.extrapolation;
            scale_counters(&mut c, f);
            c
        })
        .collect();
    let targets: Vec<CalibrationTarget> = runs
        .iter()
        .map(|r| {
            let p = r.kind.paper();
            CalibrationTarget {
                total_s: p.i9_latency_s,
                shares: p.fig3_shares,
            }
        })
        .collect();

    let base = CpuCostModel::i9_9940x();
    let scales = fit_categories(&base, &counters, &targets);
    let fitted = apply_scales(&base, &scales);
    println!("fitted per-category scales vs current i9 model:");
    println!("  ray_casting    x{:.4}", scales.ray_casting);
    println!("  update_leaf    x{:.4}", scales.update_leaf);
    println!("  update_parents x{:.4}", scales.update_parents);
    println!("  prune_expand   x{:.4}", scales.prune_expand);
    println!();
    println!("suggested i9 constants (ns):");
    println!("  dda_step_ns: {:.3},", fitted.dda_step_ns);
    println!("  leaf_update_ns: {:.3},", fitted.leaf_update_ns);
    println!("  traverse_step_ns: {:.3},", fitted.traverse_step_ns);
    println!("  saturation_probe_ns: {:.3},", fitted.saturation_probe_ns);
    println!("  parent_update_ns: {:.3},", fitted.parent_update_ns);
    println!(
        "  parent_child_read_ns: {:.3},",
        fitted.parent_child_read_ns
    );
    println!("  prune_check_ns: {:.3},", fitted.prune_check_ns);
    println!("  prune_child_read_ns: {:.3},", fitted.prune_child_read_ns);
    println!("  prune_ns: {:.3},", fitted.prune_ns);
    println!("  expand_ns: {:.3},", fitted.expand_ns);
    println!();

    // --- A57 global factor against Table III. ---
    let i9_preds: Vec<f64> = counters
        .iter()
        .map(|c| fitted.runtime(c).total_s())
        .collect();
    let a57_targets: Vec<f64> = runs.iter().map(|r| r.kind.paper().a57_latency_s).collect();
    let a57_factor = omu_cpumodel::fit::fit_scale(&i9_preds, &a57_targets);
    println!("suggested A57 factor over fitted i9: x{a57_factor:.3}");
    println!();

    // --- Fit quality report. ---
    let mut t = TextTable::new([
        "dataset",
        "i9 paper (s)",
        "i9 fitted (s)",
        "shares paper",
        "shares fitted",
    ]);
    for (i, r) in runs.iter().enumerate() {
        let b = fitted.runtime(&counters[i]);
        let p = r.kind.paper();
        t.row([
            r.kind.name().to_owned(),
            fmt_f(p.i9_latency_s),
            fmt_f(b.total_s()),
            format!("{:?}", p.fig3_shares.map(|s| (s * 100.0).round() as i64)),
            format!("{:?}", b.shares().map(|s| (s * 100.0).round() as i64)),
        ]);
    }
    println!("{t}");

    // --- Counter magnitudes (for the record). ---
    for (i, r) in runs.iter().enumerate() {
        println!(
            "{}: updates {:.1} M (paper {:.0} M), dda {:.1} M, prune_checks {:.1} M, \
             prune_child_reads {:.1} M, parent_reads {:.1} M, prunes {:.2} M, expands {:.2} M",
            r.kind.name(),
            r.updates_full() / 1e6,
            r.kind.paper().voxel_update_millions,
            counters[i].dda_steps as f64 / 1e6,
            counters[i].prune_checks as f64 / 1e6,
            counters[i].prune_child_reads as f64 / 1e6,
            counters[i].parent_child_reads as f64 / 1e6,
            counters[i].prunes as f64 / 1e6,
            counters[i].expands as f64 / 1e6,
        );
    }
    println!();

    // --- Accelerator anchors. ---
    let mut t = TextTable::new([
        "dataset",
        "OMU latency (s)",
        "paper (s)",
        "power (mW)",
        "SRAM %",
        "imbalance",
        "rows/bank",
    ]);
    for r in &runs {
        t.row([
            r.kind.name().to_owned(),
            fmt_f(r.omu_latency_full()),
            fmt_f(r.kind.paper().omu_latency_s),
            fmt_f(r.accel.power_mw),
            format!("{:.0}", r.accel.sram_power_share * 100.0),
            format!("{:.2}", r.accel.load_imbalance),
            r.accel_rows_per_bank.to_string(),
        ]);
    }
    println!("{t}");
    println!("paper power anchor: 250.8 mW at 1 GHz, 91 % SRAM");
}

fn scale_counters(c: &mut omu_octree::OpCounters, f: f64) {
    let s = |v: &mut u64| *v = (*v as f64 * f).round() as u64;
    s(&mut c.dda_steps);
    s(&mut c.leaf_updates);
    s(&mut c.traverse_steps);
    s(&mut c.saturation_probes);
    s(&mut c.saturated_skips);
    s(&mut c.parent_updates);
    s(&mut c.parent_child_reads);
    s(&mut c.prune_checks);
    s(&mut c.prune_child_reads);
    s(&mut c.prunes);
    s(&mut c.expands);
    s(&mut c.node_creations);
}
