//! Regenerates Fig. 8 (layout/area) and the Section VI-C power numbers.
//!
//! The area model needs no workload; the power split is measured on the
//! FR-079 corridor run (the paper's reference operating point).
use omu_bench::{run_dataset_with_engine, runner::default_scale, RunOptions};
use omu_core::{area_model, floorplan_ascii, OmuConfig};
use omu_datasets::DatasetKind;

fn main() {
    let opts = RunOptions::from_env();
    let config = OmuConfig::default();
    println!("{}", floorplan_ascii(&config));
    println!("{}", area_model(&config));
    println!("paper: 2.5 mm^2 total, 2.0 mm x 1.25 mm, 8 PEs x 256 kB, 12 nm, 1 GHz @ 0.8 V");
    println!();

    let scale = opts
        .scale
        .unwrap_or_else(|| default_scale(DatasetKind::Fr079Corridor));
    eprintln!(
        "running FR-079 corridor at scale {scale} ({} engine) for the power split ...",
        opts.engine
    );
    let run = run_dataset_with_engine(DatasetKind::Fr079Corridor, scale, opts.engine);
    println!(
        "power on FR-079 corridor: {:.1} mW at 1 GHz, {:.0} % SRAM (paper: 250.8 mW, 91 %)",
        run.accel.power_mw,
        run.accel.sram_power_share * 100.0
    );
    println!(
        "SRAM utilization: {:.0} %, load imbalance: {:.2}, stall cycles: {}",
        run.accel.sram_utilization * 100.0,
        run.accel.load_imbalance,
        run.accel.stall_cycles
    );
}
