//! Ablation: PE count scaling (the paper's "PE number is set to 8 ... but
//! it is also scalable" claim, Section V).
//!
//! Runs the FR-079 corridor workload on 1/2/4/8 PEs and reports latency,
//! throughput and speedup over the single-PE design.
use omu_bench::table::{fmt_f, fmt_x};
use omu_bench::{runner::default_scale, RunOptions, TextTable};
use omu_core::{run_accelerator_with_engine, OmuConfig};
use omu_datasets::DatasetKind;

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(default_scale(kind) / 2.0);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();

    println!(
        "PE-count ablation on {} (scale {scale}, {} engine):",
        kind.name(),
        opts.engine
    );
    let mut t = TextTable::new([
        "PEs",
        "latency (s)",
        "FPS",
        "speedup",
        "imbalance",
        "power (mW)",
    ]);
    let mut base_latency = None;
    for num_pes in [1usize, 2, 4, 8] {
        let config = OmuConfig::builder()
            .num_pes(num_pes)
            .rows_per_bank(1 << 16)
            .resolution(spec.resolution)
            .max_range(Some(spec.max_range))
            .build()
            .unwrap();
        let (_, s) =
            run_accelerator_with_engine(config, dataset.scans(), opts.engine.update_engine())
                .unwrap();
        let base = *base_latency.get_or_insert(s.latency_s);
        t.row([
            num_pes.to_string(),
            fmt_f(s.latency_s),
            fmt_f(s.fps),
            fmt_x(base / s.latency_s),
            format!("{:.2}", s.load_imbalance),
            fmt_f(s.power_mw),
        ]);
    }
    println!("{t}");
    println!("the 8-PE design is the paper's configuration (~8x compute throughput)");
}
