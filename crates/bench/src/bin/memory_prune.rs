//! The Section III memory claim: "Octree pruning can significantly reduce
//! the memory storage by up to 44% with no accuracy loss".
//!
//! Builds the FR-079 corridor map with pruning enabled and disabled, on
//! both the software baseline and the accelerator, and reports node
//! counts, bytes, T-Mem rows, and the prune-address-manager reuse that
//! keeps utilization high (Fig. 6's purpose).
use omu_bench::table::{fmt_f, fmt_pct};
use omu_bench::{runner::default_scale, RunOptions, TextTable};
use omu_core::{run_accelerator_with_engine, OmuConfig};
use omu_datasets::DatasetKind;
use omu_geometry::Occupancy;
use omu_map::MapBuilder;
use omu_raycast::IntegrationMode;

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or_else(|| default_scale(kind));
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();

    // --- Software baseline, pruning on vs off, through the facade. ---
    let mut maps = Vec::new();
    for pruning in [true, false] {
        let mut map = MapBuilder::new(spec.resolution)
            .engine(opts.engine)
            .integration_mode(IntegrationMode::Raywise)
            .max_range(Some(spec.max_range))
            .pruning(pruning)
            .build()
            .unwrap();
        for scan in dataset.scans() {
            map.insert(&scan).unwrap();
        }
        maps.push(map);
    }
    let pruned = maps[0].tree().expect("software backend");
    let unpruned = maps[1].tree().expect("software backend");

    let mp = pruned.memory_stats();
    let mu = unpruned.memory_stats();
    let saving_nodes = 1.0 - mp.live_nodes as f64 / mu.live_nodes as f64;
    let saving_bytes =
        1.0 - mp.octomap_equivalent_bytes as f64 / mu.octomap_equivalent_bytes as f64;

    println!(
        "pruning memory savings on {} (scale {scale}, {} engine):",
        kind.name(),
        opts.engine
    );
    let mut t = TextTable::new(["", "pruning on", "pruning off", "saving"]);
    t.row([
        "tree nodes".to_owned(),
        mp.live_nodes.to_string(),
        mu.live_nodes.to_string(),
        fmt_pct(saving_nodes),
    ]);
    t.row([
        "OctoMap-equivalent kB".to_owned(),
        fmt_f(mp.octomap_equivalent_bytes as f64 / 1024.0),
        fmt_f(mu.octomap_equivalent_bytes as f64 / 1024.0),
        fmt_pct(saving_bytes),
    ]);
    println!("{t}");
    println!("paper claim: pruning saves up to 44 % with no accuracy loss\n");

    // --- No accuracy loss: identical classification everywhere observed. ---
    let mut checked = 0u64;
    for leaf in unpruned.iter_leaves() {
        if leaf.depth == omu_geometry::TREE_DEPTH {
            assert_eq!(
                pruned.occupancy(leaf.key),
                leaf.occupancy,
                "pruned map must classify voxel {} identically",
                leaf.key
            );
            checked += 1;
        }
    }
    println!("accuracy: {checked} finest voxels classify identically in both maps");
    let probe = omu_geometry::Point3::new(2.0, 0.0, 0.0);
    assert_ne!(pruned.occupancy_at(probe).unwrap(), Occupancy::Occupied);

    // --- Accelerator side: T-Mem rows and address reuse. ---
    for pruning in [true, false] {
        let config = OmuConfig::builder()
            .rows_per_bank(1 << 16)
            .resolution(spec.resolution)
            .max_range(Some(spec.max_range))
            .pruning_enabled(pruning)
            .build()
            .unwrap();
        let (omu, _) =
            run_accelerator_with_engine(config, dataset.scans(), opts.engine.update_engine())
                .unwrap();
        let stats = omu.stats();
        let live: u64 = stats.per_pe.iter().map(|p| p.live_rows).sum();
        let high: u64 = stats.per_pe.iter().map(|p| p.high_water_rows).sum();
        let reuse: u64 = stats.per_pe.iter().map(|p| p.prune_mgr.reuse_hits).sum();
        let fresh: u64 = stats.per_pe.iter().map(|p| p.prune_mgr.fresh_allocs).sum();
        println!(
            "accelerator (pruning {}): live rows {live}, peak rows {high}, \
             row allocations {:.1} % served from the prune stack",
            if pruning { "on " } else { "off" },
            100.0 * reuse as f64 / (reuse + fresh).max(1) as f64,
        );
    }
}
