//! Scalar vs batched vs batched+parallel voxel-update throughput on the
//! corridor dataset — the microbenchmark behind `BENCH_batch_update.json`
//! (see `src/bin/bench_batch_update.rs` for the JSON emitter).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use omu_datasets::DatasetKind;
use omu_geometry::Scan;
use omu_octree::OctreeF32;
use omu_raycast::IntegrationMode;

fn corridor_scans() -> Vec<Scan> {
    DatasetKind::Fr079Corridor
        .build_scaled(0.016)
        .scans()
        .collect()
}

fn fresh_tree(resolution: f64, max_range: f64) -> OctreeF32 {
    let mut t = OctreeF32::new(resolution).unwrap();
    t.set_integration_mode(IntegrationMode::Raywise);
    t.set_max_range(Some(max_range));
    t
}

fn bench_scan_integration(c: &mut Criterion) {
    let spec = DatasetKind::Fr079Corridor.spec();
    let scans = corridor_scans();
    let updates: u64 = {
        let mut t = fresh_tree(spec.resolution, spec.max_range);
        scans
            .iter()
            .map(|s| t.insert_scan(s).unwrap().total_updates())
            .sum()
    };

    let mut g = c.benchmark_group("batch_update");
    g.throughput(Throughput::Elements(updates));
    g.sample_size(10);
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let mut t = fresh_tree(spec.resolution, spec.max_range);
            for s in &scans {
                t.insert_scan(s).unwrap();
            }
            t.num_nodes()
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut t = fresh_tree(spec.resolution, spec.max_range);
            for s in &scans {
                t.insert_scan_batched(s).unwrap();
            }
            t.num_nodes()
        })
    });
    g.bench_function("batched_parallel", |b| {
        b.iter(|| {
            let mut t = fresh_tree(spec.resolution, spec.max_range);
            for s in &scans {
                t.insert_scan_parallel(s, 0).unwrap();
            }
            t.num_nodes()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scan_integration);
criterion_main!(benches);
