//! Ray-casting benchmarks: DDA throughput versus ray length, and full
//! scan integration in both overlap modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use omu_geometry::{KeyConverter, Point3, PointCloud, Scan};
use omu_raycast::{compute_ray_keys, IntegrationMode, KeyRay, ScanIntegrator};
use std::hint::black_box;

fn bench_dda(c: &mut Criterion) {
    let conv = KeyConverter::new(0.2).unwrap();
    let mut g = c.benchmark_group("dda");
    for length_m in [1.0f64, 5.0, 20.0] {
        let end = Point3::new(length_m * 0.7, length_m * 0.6, length_m * 0.38);
        let cells = (length_m / 0.2 * 1.6) as u64;
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(
            BenchmarkId::new("compute_ray_keys", length_m as u64),
            &end,
            |b, &end| {
                let mut ray = KeyRay::new();
                b.iter(|| {
                    compute_ray_keys(&conv, black_box(Point3::ZERO), black_box(end), &mut ray)
                        .unwrap()
                });
            },
        );
    }
    g.finish();
}

fn ring_scan(points: usize) -> Scan {
    let cloud: PointCloud = (0..points)
        .map(|i| {
            let a = i as f64 * std::f64::consts::TAU / points as f64;
            Point3::new(6.0 * a.cos(), 6.0 * a.sin(), (i % 7) as f64 * 0.3 - 1.0)
        })
        .collect();
    Scan::new(Point3::new(0.01, 0.01, 0.01), cloud)
}

fn bench_integration(c: &mut Criterion) {
    let conv = KeyConverter::new(0.2).unwrap();
    let scan = ring_scan(512);
    let mut g = c.benchmark_group("scan_integration");
    g.throughput(Throughput::Elements(512));
    for (name, mode) in [
        ("raywise", IntegrationMode::Raywise),
        ("dedup", IntegrationMode::DedupPerScan),
    ] {
        g.bench_function(name, |b| {
            let mut integrator = ScanIntegrator::new(conv, Some(10.0), mode);
            b.iter(|| {
                let mut n = 0u64;
                integrator.integrate(black_box(&scan), |_| n += 1).unwrap();
                n
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dda, bench_integration);
criterion_main!(benches);
