//! One benchmark group per paper table/figure, at miniature scale.
//!
//! The *model outputs* for each table/figure come from the
//! `omu-bench` binaries (`table2` … `fig10`, `repro_all`); these criterion
//! groups time the machinery that regenerates them, so `cargo bench`
//! documents the relative cost of baseline vs accelerator simulation on
//! identical slices of each workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omu_core::{run_accelerator, OmuConfig};
use omu_cpumodel::CpuCostModel;
use omu_datasets::DatasetKind;
use omu_geometry::Scan;
use omu_octree::OctreeF32;
use omu_raycast::IntegrationMode;
use std::hint::black_box;

/// A small slice of one dataset scan keeps the benches fast while
/// exercising exactly the table's code path.
fn slice_of(kind: DatasetKind, points: usize) -> (Scan, f64, f64) {
    let dataset = kind.build_scaled(1.0 / kind.spec().scans as f64);
    let spec = *dataset.spec();
    let full = dataset.scan(0);
    let cloud: omu_geometry::PointCloud = full.cloud.iter().copied().take(points).collect();
    (
        Scan::new(full.origin, cloud),
        spec.resolution,
        spec.max_range,
    )
}

fn baseline_time(scan: &Scan, resolution: f64, max_range: f64) -> usize {
    let mut tree = OctreeF32::new(resolution).unwrap();
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(max_range));
    tree.insert_scan(scan).unwrap();
    tree.num_nodes()
}

fn accel_time(scan: &Scan, resolution: f64, max_range: f64) -> u64 {
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 14)
        .resolution(resolution)
        .max_range(Some(max_range))
        .integration_mode(IntegrationMode::Raywise)
        .build()
        .unwrap();
    let (_, summary) = run_accelerator(config, std::iter::once(scan.clone())).unwrap();
    summary.voxel_updates
}

/// Tables II–V and Figs. 3/9/10 all consume the same two runs (baseline
/// octree with counters + accelerator model); benchmark both per dataset.
fn bench_table_machinery(c: &mut Criterion) {
    for kind in DatasetKind::ALL {
        let (scan, res, range) = slice_of(kind, 2_000);
        let mut g = c.benchmark_group(format!(
            "tables2to5_figs3_9_10/{}",
            kind.name().replace(' ', "_")
        ));
        g.sample_size(10);
        g.bench_with_input(
            BenchmarkId::new("baseline_octree", scan.len()),
            &scan,
            |b, s| b.iter(|| baseline_time(black_box(s), res, range)),
        );
        g.bench_with_input(
            BenchmarkId::new("omu_accelerator", scan.len()),
            &scan,
            |b, s| b.iter(|| accel_time(black_box(s), res, range)),
        );
        g.finish();
    }
}

/// The CPU cost models behind Table II/III and Fig. 3 are pure counter
/// arithmetic — effectively free next to the runs themselves.
fn bench_cpu_models(c: &mut Criterion) {
    let (scan, res, range) = slice_of(DatasetKind::Fr079Corridor, 2_000);
    let mut tree = OctreeF32::new(res).unwrap();
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(range));
    tree.insert_scan(&scan).unwrap();
    let counters = *tree.counters();
    let mut g = c.benchmark_group("table3_cpu_models");
    g.bench_function("i9_runtime", |b| {
        let m = CpuCostModel::i9_9940x();
        b.iter(|| m.runtime(black_box(&counters)).total_s())
    });
    g.bench_function("a57_runtime", |b| {
        let m = CpuCostModel::cortex_a57();
        b.iter(|| m.runtime(black_box(&counters)).total_s())
    });
    g.finish();
}

/// Fig. 8's area model and the Section VI-C power report.
fn bench_fig8_reports(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_reports");
    g.bench_function("area_model", |b| {
        b.iter(|| omu_core::area_model(&OmuConfig::default()).total_mm2())
    });
    let (scan, res, range) = slice_of(DatasetKind::Fr079Corridor, 1_000);
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 14)
        .resolution(res)
        .max_range(Some(range))
        .build()
        .unwrap();
    let (omu, _) = run_accelerator(config, std::iter::once(scan)).unwrap();
    g.bench_function("power_report", |b| b.iter(|| omu.power_report().total_mw()));
    g.finish();
}

criterion_group!(
    benches,
    bench_table_machinery,
    bench_cpu_models,
    bench_fig8_reports
);
criterion_main!(benches);
