//! Software-baseline benchmarks: the OctoMap octree's update, search,
//! ray-cast and serialization paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};
use omu_octree::OctreeF32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn mapped_tree() -> OctreeF32 {
    let mut tree = OctreeF32::new(0.2).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..8 {
        let cloud: PointCloud = (0..256)
            .map(|_| {
                Point3::new(
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-2.0..2.0),
                )
            })
            .collect();
        tree.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
    }
    tree
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("octree_update");
    g.throughput(Throughput::Elements(1));
    let keys: Vec<VoxelKey> = {
        let mut rng = StdRng::seed_from_u64(7);
        (0..1024)
            .map(|_| {
                VoxelKey::new(
                    rng.random_range(32700..32850),
                    rng.random_range(32700..32850),
                    rng.random_range(32700..32850),
                )
            })
            .collect()
    };
    g.bench_function("update_key_fresh_region", |b| {
        let mut tree = OctreeF32::new(0.2).unwrap();
        let mut i = 0;
        b.iter(|| {
            let k = keys[i & 1023];
            i += 1;
            tree.update_key(black_box(k), i % 3 != 0)
        });
    });
    g.bench_function("update_key_saturated_region", |b| {
        let mut tree = OctreeF32::new(0.2).unwrap();
        for _ in 0..8 {
            for &k in &keys {
                tree.update_key(k, true);
            }
        }
        let mut i = 0;
        b.iter(|| {
            let k = keys[i & 1023];
            i += 1;
            tree.update_key(black_box(k), true)
        });
    });
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let tree = mapped_tree();
    let mut g = c.benchmark_group("octree_query");
    g.throughput(Throughput::Elements(1));
    let key = tree
        .converter()
        .coord_to_key(Point3::new(4.0, 2.0, 0.5))
        .unwrap();
    g.bench_function("search", |b| b.iter(|| tree.search(black_box(key))));
    g.bench_function("occupancy", |b| b.iter(|| tree.occupancy(black_box(key))));
    g.bench_function("cast_ray_10m", |b| {
        b.iter(|| {
            tree.cast_ray(
                black_box(Point3::ZERO),
                black_box(Point3::new(1.0, 0.3, 0.05)),
                10.0,
                true,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let tree = mapped_tree();
    let mut g = c.benchmark_group("octree_maintenance");
    g.bench_function("iter_leaves", |b| b.iter(|| tree.iter_leaves().count()));
    g.bench_function("snapshot", |b| b.iter(|| tree.snapshot().len()));
    g.bench_function("to_bytes", |b| b.iter(|| tree.to_bytes().len()));
    let bytes = tree.to_bytes();
    g.bench_function("from_bytes", |b| {
        b.iter(|| {
            OctreeF32::from_bytes(black_box(&bytes))
                .unwrap()
                .num_nodes()
        })
    });
    g.bench_function("prune_all_noop", |b| {
        // Already pruned eagerly: measures the scan cost alone.
        let mut t = tree.clone();
        b.iter(|| t.prune_all())
    });
    g.finish();
}

criterion_group!(benches, bench_updates, bench_queries, bench_maintenance);
criterion_main!(benches);
