//! Microbenchmarks of the data-plane primitives: the 64-bit node entry
//! (Fig. 5), fixed-point log-odds arithmetic, and voxel-key math.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use omu_core::{ChildStatus, NodeEntry};
use omu_geometry::{FixedLogOdds, KeyConverter, Point3, VoxelKey};
use std::hint::black_box;

fn bench_node_entry(c: &mut Criterion) {
    let mut g = c.benchmark_group("node_entry");
    g.throughput(Throughput::Elements(1));
    let entry = NodeEntry {
        ptr: 0x1234,
        tags: 0xA5C3,
        prob: FixedLogOdds::from_f32(1.25),
    };
    let word = entry.pack();
    g.bench_function("pack", |b| b.iter(|| black_box(entry).pack()));
    g.bench_function("unpack", |b| b.iter(|| NodeEntry::unpack(black_box(word))));
    g.bench_function("child_status", |b| {
        b.iter(|| black_box(entry).child_status(black_box(5)))
    });
    g.bench_function("with_child_status", |b| {
        b.iter(|| black_box(entry).with_child_status(black_box(5), ChildStatus::Inner))
    });
    g.finish();
}

fn bench_fixed_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_logodds");
    g.throughput(Throughput::Elements(1));
    let a = FixedLogOdds::from_f32(0.85);
    let v = FixedLogOdds::from_f32(2.2);
    g.bench_function("saturating_add", |b| {
        b.iter(|| black_box(v).saturating_add(black_box(a)))
    });
    g.bench_function("from_f32", |b| {
        b.iter(|| FixedLogOdds::from_f32(black_box(0.8473)))
    });
    g.finish();
}

fn bench_keys(c: &mut Criterion) {
    let conv = KeyConverter::new(0.2).unwrap();
    let p = Point3::new(12.345, -6.789, 1.234);
    let key = conv.coord_to_key(p).unwrap();
    let mut g = c.benchmark_group("voxel_key");
    g.throughput(Throughput::Elements(1));
    g.bench_function("coord_to_key", |b| {
        b.iter(|| conv.coord_to_key(black_box(p)))
    });
    g.bench_function("key_to_coord", |b| {
        b.iter(|| conv.key_to_coord(black_box(key)))
    });
    g.bench_function("child_index_at", |b| {
        b.iter(|| black_box(key).child_index_at(black_box(7)))
    });
    g.bench_function("path_from_root", |b| {
        b.iter(|| {
            black_box(key)
                .path_from_root()
                .map(|c| c.index())
                .sum::<usize>()
        })
    });
    g.finish();
    let _ = VoxelKey::ORIGIN;
}

criterion_group!(benches, bench_node_entry, bench_fixed_point, bench_keys);
criterion_main!(benches);
