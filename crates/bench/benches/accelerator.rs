//! Accelerator-model benchmarks: how fast the simulator itself executes
//! PE updates, scan integration, scheduling, and queries.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use omu_core::{OmuAccelerator, OmuConfig, VoxelScheduler};
use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn ring_scan(points: usize, seed: u64) -> Scan {
    let mut rng = StdRng::seed_from_u64(seed);
    let cloud: PointCloud = (0..points)
        .map(|_| {
            Point3::new(
                rng.random_range(-6.0..6.0),
                rng.random_range(-6.0..6.0),
                rng.random_range(-2.0..2.0),
            )
        })
        .collect();
    Scan::new(Point3::new(0.01, 0.01, 0.01), cloud)
}

fn bench_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("accel_update");
    g.throughput(Throughput::Elements(1));
    let keys: Vec<VoxelKey> = {
        let mut rng = StdRng::seed_from_u64(3);
        (0..1024)
            .map(|_| {
                VoxelKey::new(
                    rng.random_range(32000..33500),
                    rng.random_range(32000..33500),
                    rng.random_range(32000..33500),
                )
            })
            .collect()
    };
    g.bench_function("update_voxel", |b| {
        let mut omu =
            OmuAccelerator::new(OmuConfig::builder().rows_per_bank(1 << 15).build().unwrap())
                .unwrap();
        let mut i = 0;
        b.iter(|| {
            let k = keys[i & 1023];
            i += 1;
            omu.update_voxel(black_box(k), i % 3 != 0).unwrap()
        });
    });
    g.finish();
}

fn bench_scan_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("accel_scan");
    let scan = ring_scan(256, 11);
    g.throughput(Throughput::Elements(256));
    g.bench_function("integrate_scan_256pts", |b| {
        let mut omu =
            OmuAccelerator::new(OmuConfig::builder().rows_per_bank(1 << 15).build().unwrap())
                .unwrap();
        b.iter(|| omu.integrate_scan(black_box(&scan)).unwrap());
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut omu =
        OmuAccelerator::new(OmuConfig::builder().rows_per_bank(1 << 15).build().unwrap()).unwrap();
    for s in 0..4 {
        omu.integrate_scan(&ring_scan(256, s)).unwrap();
    }
    let key = omu
        .converter()
        .coord_to_key(Point3::new(3.0, 1.0, 0.5))
        .unwrap();
    let mut g = c.benchmark_group("accel_query");
    g.throughput(Throughput::Elements(1));
    g.bench_function("query_key", |b| b.iter(|| omu.query_key(black_box(key))));
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(1));
    g.bench_function("dispatch", |b| {
        let mut s = VoxelScheduler::new(8, 16);
        let mut pe = 0;
        b.iter(|| {
            pe = (pe + 1) & 7;
            s.dispatch(black_box(pe), black_box(95))
        });
    });
    g.bench_function("pe_for", |b| {
        let s = VoxelScheduler::new(8, 16);
        let k = VoxelKey::new(40000, 20000, 50000);
        b.iter(|| s.pe_for(black_box(k)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_update,
    bench_scan_integration,
    bench_query,
    bench_scheduler
);
criterion_main!(benches);
