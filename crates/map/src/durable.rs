//! Crash-safe storage primitives for the map service's durability layer
//! — and the deterministic fault harness that proves them.
//!
//! Everything the WAL and checkpoint machinery does to disk goes
//! through two small traits, [`DurableFile`] (an append-only log
//! handle) and [`DurableDir`] (a flat directory of named blobs with an
//! atomic-publish primitive). [`RealDir`] is the production
//! implementation; [`FaultyDir`] wraps any implementation and injects
//! I/O errors, short writes, and panics at scripted operation indices
//! from a seeded [`FaultPlan`], so crash-recovery tests replay the
//! exact same failure point every run.
//!
//! This module is the workspace's single home for library-code
//! `std::fs` writes (lint rule L7): higher layers express *what* to
//! persist, this layer owns *how* bytes become durable.
//!
//! Atomicity rules:
//!
//! - Blob publication ([`DurableDir::write_atomic`]) is temp file →
//!   `fsync` → rename → directory `fsync`. A crash leaves either the
//!   old state or the new file, never a half-written visible blob;
//!   stale `.tmp-` files are ignored (and garbage-collected) by
//!   recovery.
//! - Log appends ([`DurableFile::append`] + [`DurableFile::sync`]) may
//!   tear at the end: recovery tolerates a torn final record by
//!   construction (CRC framing, see the `wal` module).

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// When to cut a durable checkpoint of the serving map.
///
/// Configured through
/// [`MapBuilder::durability`](crate::MapBuilder::durability); the WAL
/// runs under either policy, so no acknowledged scan is ever lost —
/// the policy only controls how much WAL replay a recovery pays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Checkpoint after every `n` published epochs (`n >= 1`). The
    /// checkpoint serializes a pinned snapshot on a dedicated thread;
    /// the writer keeps ingesting meanwhile.
    EveryNEpochs(u32),
    /// Checkpoint only on explicit
    /// [`MapService::checkpoint`](crate::MapService::checkpoint) calls.
    Manual,
}

/// An append-only durable log handle (one WAL segment).
pub trait DurableFile: Send {
    /// Appends `data` at the end of the file. A crash (or injected
    /// fault) may persist any prefix.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Forces appended bytes to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A flat directory of named durable blobs — the storage surface the
/// WAL and checkpoint code is written against.
///
/// Implementations must be shareable across the writer and checkpoint
/// threads (`Send + Sync`); [`RealDir`] is the production one and
/// [`FaultyDir`] the fault-injecting test wrapper.
pub trait DurableDir: fmt::Debug + Send + Sync {
    /// Publishes `bytes` under `name` crash-atomically: after this
    /// returns, the blob is durable; if it fails (or the process dies),
    /// readers see either the previous version or nothing.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Opens (creating if absent) `name` for appending.
    fn open_append(&self, name: &str) -> io::Result<Box<dyn DurableFile>>;

    /// Reads the full contents of `name`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Lists the blob names currently present.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Removes `name` (used by checkpoint garbage collection).
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// Prefix of in-flight atomic writes; recovery ignores and GCs these.
pub(crate) const TMP_PREFIX: &str = ".tmp-";

/// [`DurableDir`] over a real filesystem directory.
///
/// Created by [`MapBuilder::durability`](crate::MapBuilder::durability)
/// or [`RealDir::create`]; the directory is created on first use.
#[derive(Debug)]
pub struct RealDir {
    root: PathBuf,
}

impl RealDir {
    /// Opens `root` as a durable directory, creating it (and parents)
    /// if missing.
    ///
    /// # Errors
    ///
    /// Returns the underlying filesystem error if the directory cannot
    /// be created.
    pub fn create<P: Into<PathBuf>>(root: P) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RealDir { root })
    }

    /// Best-effort fsync of the directory entry itself, so a completed
    /// rename survives power loss. Directory handles cannot be synced
    /// on every platform; failures there are ignored by design.
    fn sync_dir(&self) {
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

/// An append handle on one file of a [`RealDir`].
struct RealFile {
    file: fs::File,
}

impl DurableFile for RealFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl DurableDir for RealDir {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.root.join(format!("{TMP_PREFIX}{name}"));
        let dst = self.root.join(name);
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, &dst)?;
        self.sync_dir();
        Ok(())
    }

    fn open_append(&self, name: &str) -> io::Result<Box<dyn DurableFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(name))?;
        Ok(Box::new(RealFile { file }))
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.root.join(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.root.join(name))
    }
}

/// What a scripted fault does when its operation index is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The operation fails with an injected `io::Error`; nothing is
    /// written.
    Error,
    /// An append persists only a prefix of its bytes, then fails —
    /// the torn-write shape a power cut produces. (On non-append
    /// operations this behaves like [`FaultKind::Error`].)
    ShortWrite,
    /// The operation panics, killing the calling thread — the harness
    /// for "the writer died mid-batch".
    Panic,
}

/// A deterministic schedule of storage faults: `(operation index,
/// fault)` pairs over the sequence of mutating [`DurableDir`] /
/// [`DurableFile`] operations.
///
/// Built explicitly with [`FaultPlan::fail_at`], derived from a seed
/// with [`FaultPlan::seeded`], or taken from the
/// `OMU_DURABILITY_FAULT_SEED` environment variable with
/// [`FaultPlan::from_env`] (the same reproduction idiom as
/// `OMU_POOL_SHUFFLE_SEED`).
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultPlan {
    faults: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at mutating-operation index `op` (0-based).
    #[must_use]
    pub fn fail_at(mut self, op: u64, kind: FaultKind) -> Self {
        self.faults.push((op, kind));
        self
    }

    /// Derives a one-fault plan from `seed`: a pseudo-random fault kind
    /// at a pseudo-random operation index in `[0, horizon)`. The same
    /// seed always yields the same plan.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed;
        let op = splitmix64(&mut state) % horizon.max(1);
        let kind = match splitmix64(&mut state) % 3 {
            0 => FaultKind::Error,
            1 => FaultKind::ShortWrite,
            _ => FaultKind::Panic,
        };
        FaultPlan::new().fail_at(op, kind)
    }

    /// Builds a seeded plan from `OMU_DURABILITY_FAULT_SEED` (decimal
    /// or `0x`-prefixed hex), or `None` when the variable is unset.
    /// The horizon is fixed at 64 mutating operations.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but unparsable — a misspelled
    /// reproduction seed must not silently run faultless.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("OMU_DURABILITY_FAULT_SEED").ok()?;
        let raw = raw.trim();
        let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => raw.parse().ok(),
        };
        let seed = parsed
            // omu-lint: allow(no-panic) — a corrupted reproduction seed must
            // abort the run loudly, exactly like the stress suites' seed
            // parsing; continuing without the requested faults would fake a
            // passing result.
            .unwrap_or_else(|| panic!("unparsable OMU_DURABILITY_FAULT_SEED: {raw:?}"));
        Some(FaultPlan::seeded(seed, 64))
    }

    /// The fault scheduled at `op`, if any.
    fn fault_for(&self, op: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|&&(at, _)| at == op)
            .map(|&(_, kind)| kind)
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// One splitmix64 step — a tiny dependency-free PRNG for seed-derived
/// schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared fault cursor: one counter across every file and directory
/// operation of a [`FaultyDir`], so a plan's operation indices refer to
/// one global schedule.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    next_op: Mutex<u64>,
}

impl FaultState {
    /// Claims the next operation index and returns its scheduled fault.
    /// Panics here (not in the caller) when the fault is
    /// [`FaultKind::Panic`].
    fn advance(&self, what: &str) -> io::Result<Option<FaultKind>> {
        let mut next = lock_unpoisoned(&self.next_op);
        let op = *next;
        *next += 1;
        drop(next);
        match self.plan.fault_for(op) {
            Some(FaultKind::Panic) => {
                // omu-lint: allow(no-panic) — the entire point of this arm is
                // to kill the calling thread at a scripted instant; the crash
                // harness asserts the service recovers from exactly this.
                panic!("injected fault: scripted panic at storage op {op} ({what})")
            }
            Some(FaultKind::Error) => Err(injected(op, what)),
            other => Ok(other),
        }
    }
}

/// The injected-fault error shape; tests match on the message prefix.
fn injected(op: u64, what: &str) -> io::Error {
    io::Error::other(format!("injected fault at storage op {op} ({what})"))
}

/// A [`DurableDir`] wrapper that injects the faults scripted in a
/// [`FaultPlan`] — deterministic storage-level chaos for crash tests.
///
/// Only mutating operations (`write_atomic`, `append`, `sync`,
/// `remove`) consume operation indices; reads and listings pass
/// through untouched.
#[derive(Debug)]
pub struct FaultyDir {
    inner: Arc<dyn DurableDir>,
    state: Arc<FaultState>,
}

impl FaultyDir {
    /// Wraps `inner`, injecting the faults scripted in `plan`.
    pub fn new(inner: Arc<dyn DurableDir>, plan: FaultPlan) -> Self {
        FaultyDir {
            inner,
            state: Arc::new(FaultState {
                plan,
                next_op: Mutex::new(0),
            }),
        }
    }

    /// Number of mutating operations attempted so far (for calibrating
    /// fault horizons in tests).
    pub fn ops_attempted(&self) -> u64 {
        *lock_unpoisoned(&self.state.next_op)
    }
}

/// An append handle whose operations run through the shared fault
/// cursor.
struct FaultyFile {
    inner: Box<dyn DurableFile>,
    state: Arc<FaultState>,
}

impl DurableFile for FaultyFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        match self.state.advance("append")? {
            Some(FaultKind::ShortWrite) => {
                // Persist a strict prefix, then fail — the torn tail a
                // power cut leaves behind.
                self.inner.append(&data[..data.len() / 2])?;
                Err(io::Error::other("injected fault: short append"))
            }
            _ => self.inner.append(data),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.state.advance("sync")? {
            // A short write on sync degenerates to a plain failure.
            Some(_) => Err(io::Error::other("injected fault: sync failed")),
            None => self.inner.sync(),
        }
    }
}

impl DurableDir for FaultyDir {
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.state.advance("write_atomic")? {
            // Atomic publication cannot tear into a *visible* blob —
            // the temp file simply never gets renamed — so a short
            // write surfaces as a plain failure with nothing published.
            Some(_) => Err(io::Error::other("injected fault: atomic write failed")),
            None => self.inner.write_atomic(name, bytes),
        }
    }

    fn open_append(&self, name: &str) -> io::Result<Box<dyn DurableFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_append(name)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.read(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match self.state.advance("remove")? {
            Some(_) => Err(io::Error::other("injected fault: remove failed")),
            None => self.inner.remove(name),
        }
    }
}

/// Recover a poisoned lock: the fault cursor is a single counter whose
/// critical sections cannot leave it inconsistent, and injected panics
/// (the one expected unwind source) happen after the guard drops.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Extracts a panic payload's message (test-local mirror of
    /// `omu_pool::TaskPanic`'s extraction).
    fn payload_message(payload: &(dyn Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panicked with a non-string payload".to_owned()
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("omu_durable_{tag}_{}", std::process::id()))
    }

    #[test]
    fn real_dir_atomic_write_roundtrips_and_lists() {
        let root = temp_root("atomic");
        let dir = RealDir::create(&root).unwrap();
        dir.write_atomic("a.blob", b"hello").unwrap();
        dir.write_atomic("a.blob", b"hello again").unwrap();
        assert_eq!(dir.read("a.blob").unwrap(), b"hello again");
        assert_eq!(dir.list().unwrap(), vec!["a.blob".to_owned()]);
        dir.remove("a.blob").unwrap();
        assert!(dir.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn real_dir_append_accumulates() {
        let root = temp_root("append");
        let dir = RealDir::create(&root).unwrap();
        let mut f = dir.open_append("log").unwrap();
        f.append(b"one").unwrap();
        f.sync().unwrap();
        f.append(b"two").unwrap();
        f.sync().unwrap();
        drop(f);
        // Reopening appends, never truncates.
        let mut f = dir.open_append("log").unwrap();
        f.append(b"three").unwrap();
        f.sync().unwrap();
        assert_eq!(dir.read("log").unwrap(), b"onetwothree");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        assert_eq!(FaultPlan::seeded(7, 64), FaultPlan::seeded(7, 64));
        let distinct = (0..32)
            .map(|s| FaultPlan::seeded(s, 64))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct > 16, "seeds barely vary the plan: {distinct}/32");
    }

    #[test]
    fn injected_error_fires_at_the_scripted_op_only() {
        let root = temp_root("fault_err");
        let real: Arc<dyn DurableDir> = Arc::new(RealDir::create(&root).unwrap());
        let dir = FaultyDir::new(real, FaultPlan::new().fail_at(1, FaultKind::Error));
        dir.write_atomic("ok.blob", b"fine").unwrap(); // op 0
        let e = dir.write_atomic("bad.blob", b"nope").unwrap_err(); // op 1
        assert!(e.to_string().contains("injected fault"), "{e}");
        dir.write_atomic("ok2.blob", b"fine").unwrap(); // op 2
        assert_eq!(dir.ops_attempted(), 3);
        assert_eq!(dir.read("ok.blob").unwrap(), b"fine");
        assert!(dir.read("bad.blob").is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn short_append_persists_a_strict_prefix() {
        let root = temp_root("fault_short");
        let real: Arc<dyn DurableDir> = Arc::new(RealDir::create(&root).unwrap());
        let dir = FaultyDir::new(real, FaultPlan::new().fail_at(0, FaultKind::ShortWrite));
        let mut f = dir.open_append("log").unwrap();
        let e = f.append(b"0123456789").unwrap_err();
        assert!(e.to_string().contains("short append"), "{e}");
        assert_eq!(dir.read("log").unwrap(), b"01234");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scripted_panic_fires() {
        let root = temp_root("fault_panic");
        let real: Arc<dyn DurableDir> = Arc::new(RealDir::create(&root).unwrap());
        let dir = FaultyDir::new(real, FaultPlan::new().fail_at(0, FaultKind::Panic));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = dir.write_atomic("x", b"y");
        }));
        let msg = payload_message(caught.unwrap_err().as_ref());
        assert!(msg.contains("scripted panic"), "{msg}");
        let _ = fs::remove_dir_all(&root);
    }
}
