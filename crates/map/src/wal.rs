//! The scan write-ahead log: record framing, segment naming, and
//! torn-tail-tolerant decoding.
//!
//! Before the service writer applies a drained scan batch, it appends
//! one WAL record describing the batch and syncs it. Records are
//! length-prefixed and CRC-framed:
//!
//! ```text
//! [u32 payload len | u32 CRC-32 of payload | payload]
//! payload = u64 batch seq
//!           u32 scan count
//!           per scan: origin (3 × f64) | u32 point count | points (3 × f64 each)
//! ```
//!
//! All integers and floats are little-endian. A crash can tear the
//! final record at any byte; [`decode_segment`] stops at the first
//! frame whose length or CRC does not validate and reports the
//! surviving prefix — replaying it reproduces the pre-crash map
//! bit-identically, because map content depends only on the scan
//! sequence (batch boundaries only affect publish epochs).
//!
//! Segments are named `wal-{startseq}.log` where `startseq` is the
//! first batch sequence number the segment may contain. The writer
//! rotates to a fresh segment exactly when it triggers a checkpoint
//! covering every batch below the new start, so a segment is
//! garbage-collectable as soon as a durable checkpoint's coverage
//! reaches or passes the *next* segment's start.

use omu_geometry::Point3;
use omu_octree::crc32;

/// Segment name for the segment whose first record is batch
/// `start_seq`. Zero-padded so lexicographic order is numeric order.
pub(crate) fn wal_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

/// Parses a segment name produced by [`wal_name`].
pub(crate) fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Checkpoint blob name: `covers_seq` batches (all with seq <
/// `covers_seq`) are folded in, published at map epoch `epoch`.
pub(crate) fn ckpt_name(covers_seq: u64, epoch: u32) -> String {
    format!("ckpt-{covers_seq:020}-{epoch:010}.omut")
}

/// Parses a checkpoint name into `(covers_seq, epoch)`.
pub(crate) fn parse_ckpt_name(name: &str) -> Option<(u64, u32)> {
    let stem = name.strip_prefix("ckpt-")?.strip_suffix(".omut")?;
    let (seq, epoch) = stem.split_once('-')?;
    Some((seq.parse().ok()?, epoch.parse().ok()?))
}

/// One logged scan: the ingest-path shape (`Ingest` and `IngestPoints`
/// commands both normalize to origin + endpoints).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LoggedScan {
    /// Sensor origin.
    pub origin: Point3,
    /// Measured endpoints.
    pub points: Vec<Point3>,
}

/// One decoded WAL record: a drained batch and its sequence number.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalRecord {
    /// Monotonic batch sequence number.
    pub seq: u64,
    /// The scans of the batch, in application order.
    pub scans: Vec<LoggedScan>,
}

/// Encodes one framed record for batch `seq` directly from borrowed
/// scan slices — the writer's hot path, so no intermediate owned copy
/// of the point data is made and the CRC is left zeroed: the durable
/// thread pays for [`seal_record`] off the ingest path, overlapped
/// with batch application.
pub(crate) fn encode_record_parts(seq: u64, scans: &[(Point3, &[Point3])]) -> Vec<u8> {
    let point_count: usize = scans.iter().map(|(_, pts)| pts.len()).sum();
    let payload_len = 8 + 4 + scans.len() * (24 + 4) + point_count * 24;
    let mut frame = Vec::with_capacity(8 + payload_len);
    frame.extend_from_slice(&[0u8; 8]); // len patched below, crc by seal_record
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&(scans.len() as u32).to_le_bytes());
    for (origin, points) in scans {
        put_point(&mut frame, *origin);
        frame.extend_from_slice(&(points.len() as u32).to_le_bytes());
        for &p in *points {
            put_point(&mut frame, p);
        }
    }
    let len = (frame.len() - 8) as u32;
    frame[..4].copy_from_slice(&len.to_le_bytes());
    frame
}

/// Patches the CRC of a frame built by [`encode_record_parts`]. Must
/// run before the frame is appended; split out so the checksum of a
/// multi-megabyte record is paid on the durable thread, not the writer.
pub(crate) fn seal_record(frame: &mut [u8]) {
    let crc = crc32(&frame[8..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
}

fn put_point(buf: &mut Vec<u8>, p: Point3) {
    let mut b = [0u8; 24];
    b[..8].copy_from_slice(&p.x.to_le_bytes());
    b[8..16].copy_from_slice(&p.y.to_le_bytes());
    b[16..].copy_from_slice(&p.z.to_le_bytes());
    buf.extend_from_slice(&b);
}

/// Decodes a segment into its valid record prefix. Returns the records
/// and whether a torn/corrupt tail was cut off (`true` when trailing
/// bytes failed to validate and were discarded).
pub(crate) fn decode_segment(bytes: &[u8]) -> (Vec<WalRecord>, bool) {
    let mut records = Vec::new();
    let mut rest = bytes;
    loop {
        if rest.is_empty() {
            return (records, false);
        }
        if rest.len() < 8 {
            return (records, true);
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if rest.len() < 8 + len {
            return (records, true);
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return (records, true);
        }
        match decode_payload(payload) {
            Some(record) => records.push(record),
            // A CRC-valid but structurally short payload cannot come
            // from this encoder; treat it as corruption, cut here.
            None => return (records, true),
        }
        rest = &rest[8 + len..];
    }
}

/// Decodes one record payload (already CRC-validated).
fn decode_payload(mut p: &[u8]) -> Option<WalRecord> {
    let seq = take_u64(&mut p)?;
    let scan_count = take_u32(&mut p)? as usize;
    let mut scans = Vec::with_capacity(scan_count.min(1024));
    for _ in 0..scan_count {
        let origin = take_point(&mut p)?;
        let point_count = take_u32(&mut p)? as usize;
        // Guard the pre-allocation against absurd counts so corruption
        // cannot trigger a huge allocation before the length check.
        if p.len() < point_count.checked_mul(24)? {
            return None;
        }
        let mut points = Vec::with_capacity(point_count);
        for _ in 0..point_count {
            points.push(take_point(&mut p)?);
        }
        scans.push(LoggedScan { origin, points });
    }
    p.is_empty().then_some(WalRecord { seq, scans })
}

fn take_u32(p: &mut &[u8]) -> Option<u32> {
    let (head, rest) = p.split_first_chunk::<4>()?;
    *p = rest;
    Some(u32::from_le_bytes(*head))
}

fn take_u64(p: &mut &[u8]) -> Option<u64> {
    let (head, rest) = p.split_first_chunk::<8>()?;
    *p = rest;
    Some(u64::from_le_bytes(*head))
}

fn take_f64(p: &mut &[u8]) -> Option<f64> {
    let (head, rest) = p.split_first_chunk::<8>()?;
    *p = rest;
    Some(f64::from_le_bytes(*head))
}

fn take_point(p: &mut &[u8]) -> Option<Point3> {
    Some(Point3::new(take_f64(p)?, take_f64(p)?, take_f64(p)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Owned-scan convenience wrapper over [`encode_record_parts`] +
    /// [`seal_record`], producing a complete valid frame.
    fn encode_record(seq: u64, scans: &[LoggedScan]) -> Vec<u8> {
        let parts: Vec<(Point3, &[Point3])> = scans
            .iter()
            .map(|s| (s.origin, s.points.as_slice()))
            .collect();
        let mut frame = encode_record_parts(seq, &parts);
        seal_record(&mut frame);
        frame
    }

    fn sample_scans() -> Vec<LoggedScan> {
        vec![
            LoggedScan {
                origin: Point3::new(0.5, -1.0, 0.25),
                points: vec![Point3::new(1.0, 2.0, 3.0), Point3::new(-4.0, 0.0, 9.5)],
            },
            LoggedScan {
                origin: Point3::ZERO,
                points: vec![],
            },
        ]
    }

    #[test]
    fn record_roundtrips() {
        let scans = sample_scans();
        let mut segment = encode_record(7, &scans);
        segment.extend_from_slice(&encode_record(8, &scans[..1]));
        let (records, torn) = decode_segment(&segment);
        assert!(!torn);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 7);
        assert_eq!(records[0].scans, scans);
        assert_eq!(records[1].seq, 8);
        assert_eq!(records[1].scans, scans[..1]);
    }

    #[test]
    fn empty_segment_is_clean() {
        assert_eq!(decode_segment(&[]), (vec![], false));
    }

    #[test]
    fn every_truncation_of_the_final_record_is_tolerated() {
        let scans = sample_scans();
        let mut segment = encode_record(0, &scans);
        let first = segment.len();
        segment.extend_from_slice(&encode_record(1, &scans));
        for cut in first..segment.len() - 1 {
            let (records, torn) = decode_segment(&segment[..cut]);
            // A cut exactly on the record boundary is indistinguishable
            // from a segment that never held the second record — clean.
            assert_eq!(torn, cut > first, "cut at {cut}");
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(records[0].seq, 0);
        }
    }

    #[test]
    fn corrupt_byte_cuts_the_tail() {
        let scans = sample_scans();
        let mut segment = encode_record(0, &scans);
        let first = segment.len();
        segment.extend_from_slice(&encode_record(1, &scans));
        // Flip a payload byte of the second record: its CRC fails, the
        // first record survives.
        segment[first + 12] ^= 0xFF;
        let (records, torn) = decode_segment(&segment);
        assert!(torn);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn names_roundtrip_and_sort_numerically() {
        assert_eq!(parse_wal_name(&wal_name(42)), Some(42));
        assert_eq!(parse_ckpt_name(&ckpt_name(42, 7)), Some((42, 7)));
        assert_eq!(parse_wal_name("ckpt-0-0.omut"), None);
        assert_eq!(parse_ckpt_name("wal-00000000000000000000.log"), None);
        assert!(wal_name(9) < wal_name(10));
        assert!(ckpt_name(9, 0) < ckpt_name(10, 0));
    }
}
