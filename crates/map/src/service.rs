//! [`MapService`]: lock-free concurrent reads under live writes.
//!
//! The service owns an [`OccupancyMap`] on a dedicated writer thread
//! (spawned through `omu-pool`, the one crate allowed to own thread
//! lifecycle) fed by a scan queue. After each drained batch the writer
//! publishes an epoch-pinned [`MapSnapshot`] — a cheaply clonable read
//! handle any number of reader threads can query without locks, served
//! bit-identically to the live map at the publish instant while the
//! writer keeps streaming (the octree's row-granular copy-on-write
//! machinery keeps published rows immutable; see the octree crate's
//! snapshot docs for the epoch/reclamation rules).
//!
//! Readers that need *deltas* instead of full snapshots subscribe to the
//! change ring: each publish appends the set of voxels whose occupancy
//! classification flipped, and [`ChangeSubscription::poll`] drains
//! everything since the subscriber's last poll. The ring is bounded; a
//! subscriber that falls more than [`CHANGE_RING_EPOCHS`] publishes
//! behind gets a typed [`MapError::Lagged`] and resynchronizes from a
//! fresh snapshot.
//!
//! # Examples
//!
//! ```
//! use omu_map::{MapBuilder, MapService};
//! use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), omu_map::MapError> {
//! let service = MapService::spawn(MapBuilder::new(0.1))?;
//! service.ingest(Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
//! ))?;
//! let snap = service.flush()?; // wait until the scan is applied
//! assert_eq!(
//!     snap.occupancy_at(Point3::new(1.0, 0.0, 0.25))?,
//!     Occupancy::Occupied
//! );
//! service.shutdown()?;
//! // The snapshot outlives the service.
//! assert!(!snap.is_empty());
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};

use omu_geometry::{KeyConverter, Occupancy, Point3, Scan, VoxelKey};
use omu_octree::{LeafInfo, RayCastResult, Snapshot, SnapshotStats, TaskPanic, WorkerPool};
use omu_pool::{spawn_service, ServiceThread};

use crate::builder::MapBuilder;
use crate::durable::{DurabilityPolicy, DurableDir, DurableFile, FaultPlan, FaultyDir, RealDir};
use crate::error::MapError;
use crate::map::OccupancyMap;
use crate::wal::{
    ckpt_name, decode_segment, encode_record_parts, parse_ckpt_name, parse_wal_name, seal_record,
    wal_name,
};

/// Publish epochs of change sets the service retains for slow
/// subscribers before evicting the oldest (and reporting
/// [`MapError::Lagged`] to whoever needed it).
pub const CHANGE_RING_EPOCHS: usize = 64;

/// Checkpoint cadence [`MapService::recover`] falls back to when the
/// supplied builder carries no explicit [`DurabilityPolicy`].
pub const DEFAULT_CHECKPOINT_EPOCHS: u32 = 64;

/// Lock a mutex, recovering from poisoning: the guarded service state is
/// consistent at every release point (the writer publishes a fully-built
/// snapshot or nothing), so a poison flag carries no information.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An epoch-pinned, cheaply clonable read handle over a map published by
/// [`MapService`] (or directly by
/// [`OccupancyMap::publish_snapshot`]). All queries are lock-free and
/// bit-identical to querying the live map at the publish instant; clones
/// share the pin, and dropping the last clone lets the writer recycle
/// the rows it copied on the snapshot's behalf.
#[derive(Debug, Clone)]
pub enum MapSnapshot {
    /// Snapshot of an `f32` software tree.
    Software(Snapshot<f32>),
    /// Snapshot of a fixed-point software tree.
    SoftwareFixed(Snapshot<omu_geometry::FixedLogOdds>),
}

/// Dispatch one expression over both value representations.
macro_rules! with_snap {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            MapSnapshot::Software($s) => $body,
            MapSnapshot::SoftwareFixed($s) => $body,
        }
    };
}

impl MapSnapshot {
    /// The write epoch this snapshot pins: queries observe exactly the
    /// writes of epochs `0..=epoch()`.
    pub fn epoch(&self) -> u32 {
        with_snap!(self, s => s.epoch())
    }

    /// True when nothing had been observed at publish time.
    pub fn is_empty(&self) -> bool {
        with_snap!(self, s => s.is_empty())
    }

    /// The map resolution in metres.
    pub fn resolution(&self) -> f64 {
        with_snap!(self, s => s.resolution())
    }

    /// The key/coordinate converter.
    pub fn converter(&self) -> &KeyConverter {
        with_snap!(self, s => s.converter())
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&self, key: VoxelKey) -> Occupancy {
        with_snap!(self, s => s.occupancy(key))
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the point is outside the
    /// addressable map.
    pub fn occupancy_at(&self, point: Point3) -> Result<Occupancy, MapError> {
        Ok(with_snap!(self, s => s.occupancy_at(point))?)
    }

    /// The stored log-odds covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        with_snap!(self, s => s.logodds(key))
    }

    /// Classifies a batch of points in input order through one
    /// cached-descent reader (Morton-coalesced, like the live map's
    /// batched query engine).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when any point is outside the map
    /// (detected before any classification runs).
    pub fn occupancy_batch(&self, points: &[Point3]) -> Result<Vec<Occupancy>, MapError> {
        let conv = *self.converter();
        let keys = points
            .iter()
            .map(|&p| conv.coord_to_key(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.occupancy_batch_keys(&keys))
    }

    /// [`Self::occupancy_batch`] by voxel key (infallible).
    pub fn occupancy_batch_keys(&self, keys: &[VoxelKey]) -> Vec<Occupancy> {
        with_snap!(self, s => s.query_batch(keys))
    }

    /// Casts a query ray (OctoMap `castRay` semantics, identical to
    /// [`crate::QueryView::cast_ray`] on the live map).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the origin is outside the map or
    /// the direction is degenerate.
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        Ok(with_snap!(self, s => s.cast_ray(origin, direction, max_range, ignore_unknown))?)
    }

    /// Casts a batch of query rays through one cached-descent reader,
    /// returning results in input order.
    ///
    /// # Errors
    ///
    /// The first [`MapError::OutOfBounds`] in input order.
    pub fn cast_rays(
        &self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<Vec<RayCastResult>, MapError> {
        with_snap!(self, s => s.cast_rays(rays, max_range, ignore_unknown))
            .into_iter()
            .map(|r| r.map_err(MapError::from))
            .collect()
    }

    /// Sphere collision probe (the motion-planning query of the paper's
    /// Fig. 1).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the probe region leaves the map.
    pub fn collides_sphere(&self, center: Point3, radius: f64) -> Result<bool, MapError> {
        Ok(with_snap!(self, s => s.collides_sphere(center, radius))?)
    }

    /// The leaves intersecting the key box `[min, max]`, inclusive per
    /// axis.
    pub fn leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        with_snap!(self, s => s.iter_leaves_in_box(min, max).collect())
    }

    /// The leaves intersecting the metric box spanned by `min` and `max`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when a corner leaves the map.
    pub fn leaves_in_region(&self, min: Point3, max: Point3) -> Result<Vec<LeafInfo>, MapError> {
        let conv = *self.converter();
        let lo = conv.coord_to_key(min)?;
        let hi = conv.coord_to_key(max)?;
        Ok(self.leaves_in_box(lo, hi))
    }

    /// The canonical sorted leaf list `(key, depth, logodds)` — the
    /// equivalence suite's comparison format, identical to
    /// [`OccupancyMap::snapshot`] on the live map at the pinned epoch.
    pub fn canonical_leaves(&self) -> Vec<(VoxelKey, u8, f32)> {
        with_snap!(self, s => s.canonical_leaves())
    }

    /// Serializes the pinned snapshot to the checksummed (v2) wire
    /// format — the shape of a checkpoint blob. The walk runs entirely
    /// on the snapshot's immutable rows, so the writer pays nothing
    /// while a checkpoint serializes. Readable by
    /// [`OccupancyMap::from_bytes`] (or
    /// [`from_bytes_fixed`](OccupancyMap::from_bytes_fixed) for the
    /// fixed-point representation), which verifies the trailer CRC.
    pub fn to_bytes(&self) -> Vec<u8> {
        with_snap!(self, s => s.to_bytes())
    }
}

/// Liveness and durability status of a [`MapService`], reported by
/// [`MapService::health`]. A durability failure *degrades* the service
/// — it keeps serving snapshots and ingesting in memory — and is
/// recorded here instead of killing the writer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Why WAL logging is currently off (`None` while logging is
    /// healthy). While set, new scans are not journaled and a crash
    /// would lose them; the log heals at the next checkpoint if its
    /// segment rotation succeeds.
    pub wal_failed: Option<String>,
    /// Why the most recent checkpoint attempt failed (`None` again
    /// after any later success).
    pub checkpoint_failed: Option<String>,
    /// Publish epoch of the newest durable checkpoint.
    pub last_checkpoint_epoch: Option<u32>,
    /// Batch-sequence coverage of the newest durable checkpoint: every
    /// batch with `seq < last_checkpoint_seq` is folded in.
    pub last_checkpoint_seq: Option<u64>,
}

impl ServiceHealth {
    /// True while the whole durability pipeline is operating (trivially
    /// true when no durability is configured).
    pub fn is_healthy(&self) -> bool {
        self.wal_failed.is_none() && self.checkpoint_failed.is_none()
    }
}

/// What [`MapService::recover`] reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Publish epoch recorded in the checkpoint recovery started from
    /// (`None` when no decodable checkpoint existed).
    pub checkpoint_epoch: Option<u32>,
    /// WAL batches replayed on top of the checkpoint.
    pub replayed_batches: u64,
    /// True when a torn or corrupt WAL tail (or a sequence hole) was
    /// detected and cut; everything before the cut was still recovered.
    pub truncated_tail: bool,
}

/// Cumulative service counters, snapshotted via
/// [`MapService::service_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Scans the writer has applied.
    pub scans_ingested: u64,
    /// Scans rejected by the backend (typed error deferred to the next
    /// [`MapService::flush`]).
    pub ingest_errors: u64,
    /// Rays integrated across all applied scans.
    pub rays: u64,
    /// Snapshots the writer has published (one per drained queue batch,
    /// plus the initial empty publish).
    pub publishes: u64,
    /// The octree's snapshot/copy-on-write bookkeeping at the last
    /// publish.
    pub snapshot: SnapshotStats,
}

/// One queued writer command.
enum Command {
    Ingest(Scan),
    IngestPoints(Point3, Vec<Point3>),
    /// Publish and acknowledge: everything sent before this command is
    /// applied and visible once the ack arrives.
    Flush(mpsc::Sender<()>),
    /// Cut a checkpoint covering (at least) everything enqueued before
    /// this command; the ack arrives once the blob is durable.
    Checkpoint(mpsc::Sender<Result<(), MapError>>),
    /// Test hook: park the writer until the gate's sender is dropped or
    /// signalled, so a bounded queue can be filled deterministically.
    Stall(mpsc::Receiver<()>),
    /// Test hook: panic the writer thread, exercising the typed
    /// panic-capture path end to end.
    Panic,
    Shutdown,
}

/// The handle side of the command queue: unbounded by default, bounded
/// with typed backpressure when [`MapBuilder::queue_capacity`] is set.
#[derive(Debug)]
enum CommandSender {
    Unbounded(mpsc::Sender<Command>),
    Bounded(mpsc::SyncSender<Command>, usize),
}

impl CommandSender {
    /// Non-blocking enqueue for the ingestion path: a full bounded
    /// queue is typed [`MapError::Backpressure`], never a stall.
    fn try_ingest(&self, cmd: Command) -> Result<(), MapError> {
        match self {
            CommandSender::Unbounded(tx) => tx.send(cmd).map_err(|_| MapError::ServiceShutdown),
            CommandSender::Bounded(tx, capacity) => tx.try_send(cmd).map_err(|e| match e {
                mpsc::TrySendError::Full(_) => MapError::Backpressure {
                    capacity: *capacity,
                },
                mpsc::TrySendError::Disconnected(_) => MapError::ServiceShutdown,
            }),
        }
    }

    /// Blocking enqueue for control commands (flush, checkpoint,
    /// shutdown): these wait for a slot instead of failing.
    fn send_blocking(&self, cmd: Command) -> Result<(), MapError> {
        match self {
            CommandSender::Unbounded(tx) => tx.send(cmd).map_err(|_| MapError::ServiceShutdown),
            CommandSender::Bounded(tx, _) => tx.send(cmd).map_err(|_| MapError::ServiceShutdown),
        }
    }
}

/// State shared between the service handle, its subscriptions, and the
/// writer thread. One plain mutex: the writer takes it once per publish
/// (milliseconds apart), readers once per `snapshot()`/`poll()` call to
/// clone an `Arc`-backed handle out — queries themselves never touch it.
#[derive(Debug)]
struct ServiceShared {
    state: Mutex<ServiceState>,
}

#[derive(Debug)]
struct ServiceState {
    snapshot: MapSnapshot,
    stats: ServiceStats,
    /// `(publish epoch, voxels whose classification flipped in it)`,
    /// oldest first, at most [`CHANGE_RING_EPOCHS`] entries.
    ring: VecDeque<(u32, Arc<[VoxelKey]>)>,
    /// Highest publish epoch whose change set has been evicted from the
    /// ring (`None` until the first eviction) — what turns a slow
    /// subscriber's gap into a typed [`MapError::Lagged`].
    dropped_through: Option<u32>,
    /// First backend error since the last flush, surfaced there.
    deferred_error: Option<MapError>,
    /// The writer thread's panic, captured and typed instead of being
    /// swallowed on drop ([`MapService::take_writer_error`]).
    writer_error: Option<MapError>,
    /// Durability status ([`MapService::health`]).
    health: ServiceHealth,
    shutdown: bool,
}

/// A single-writer map server: scans stream in through a queue, an
/// epoch-pinned [`MapSnapshot`] streams out after every drained batch,
/// and any number of concurrent readers query snapshots lock-free while
/// the writer keeps ingesting. See the module docs for the serving
/// model.
#[derive(Debug)]
pub struct MapService {
    sender: CommandSender,
    shared: Arc<ServiceShared>,
    writer: Option<ServiceThread>,
    /// The checkpoint thread, present when durability is configured. It
    /// exits when the writer drops its job channel.
    ckpt: Option<ServiceThread>,
    readers: Arc<WorkerPool>,
}

impl MapService {
    /// Builds the map and spawns its writer thread. Change detection is
    /// forced on (it feeds the subscription ring), so the builder must
    /// target a software backend.
    ///
    /// # Errors
    ///
    /// Everything [`MapBuilder::build`] can return;
    /// [`MapError::Unsupported`] for the accelerator backend (which can
    /// neither track changes nor publish snapshots).
    pub fn spawn(builder: MapBuilder) -> Result<Self, MapError> {
        let durability = builder.durability_setup()?;
        if let Some((store, _)) = &durability {
            let names = store.list().map_err(MapError::Io)?;
            let preexisting = names
                .iter()
                .filter(|n| parse_wal_name(n).is_some() || parse_ckpt_name(n).is_some())
                .count();
            if preexisting > 0 {
                return Err(MapError::Io(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "durability directory already holds {preexisting} checkpoint/WAL \
                         files; use MapService::recover to resume from them"
                    ),
                )));
            }
        }
        let queue_capacity = builder.queue_capacity;
        let map = builder.change_detection(true).build()?;
        Self::spawn_with_map(map, queue_capacity, durability, 0, ServiceHealth::default())
    }

    /// Rebuilds a crashed (or cleanly stopped) durable service from
    /// `dir`: the newest decodable checkpoint is restored, the WAL tail
    /// on top of it replayed — tolerating a torn final record — and a
    /// fresh service spawned that continues journaling into the same
    /// directory. The recovered map is bit-identical to serially
    /// replaying every scan batch that survived on disk.
    ///
    /// `builder` supplies the map configuration (backend, engine,
    /// sensor model, queue bound, durability policy); its durability
    /// *target* is overridden by `dir`. Without an explicit policy the
    /// recovered service checkpoints every
    /// [`DEFAULT_CHECKPOINT_EPOCHS`] publishes.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] when the directory cannot be read, plus
    /// everything [`MapBuilder::build`] can return. Corrupt checkpoints
    /// and WAL tails are *not* errors — recovery skips to the newest
    /// intact state and reports what it cut in the [`RecoveryReport`].
    pub fn recover<P: Into<PathBuf>>(
        dir: P,
        builder: MapBuilder,
    ) -> Result<(Self, RecoveryReport), MapError> {
        let store: Arc<dyn DurableDir> = Arc::new(RealDir::create(dir.into())?);
        Self::recover_with_store(store, builder)
    }

    /// [`Self::recover`] against an injected storage backend — the
    /// entry point the fault-injection suite drives. A fault plan on
    /// the builder (or `OMU_DURABILITY_FAULT_SEED`) wraps `store` in a
    /// [`FaultyDir`]; pass a pre-wrapped store with a plain builder to
    /// control fault indices exactly.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::recover`].
    pub fn recover_with_store(
        store: Arc<dyn DurableDir>,
        builder: MapBuilder,
    ) -> Result<(Self, RecoveryReport), MapError> {
        let policy = builder
            .durability_policy()
            .unwrap_or(DurabilityPolicy::EveryNEpochs(DEFAULT_CHECKPOINT_EPOCHS));
        let plan = builder.fault_plan.clone().or_else(FaultPlan::from_env);
        let store: Arc<dyn DurableDir> = match plan {
            Some(plan) if !plan.is_empty() => Arc::new(FaultyDir::new(store, plan)) as _,
            _ => store,
        };
        let builder = builder.change_detection(true);
        let names = store.list().map_err(MapError::Io)?;

        // Newest decodable checkpoint wins; corrupt ones (checksum
        // mismatch, torn atomic write that somehow became visible) are
        // skipped in favour of older intact ones.
        let mut ckpts: Vec<(u64, u32, &str)> = names
            .iter()
            .filter_map(|n| parse_ckpt_name(n).map(|(c, e)| (c, e, n.as_str())))
            .collect();
        ckpts.sort_unstable();
        let mut restored = None;
        for &(covers, epoch, name) in ckpts.iter().rev() {
            let Ok(bytes) = store.read(name) else {
                continue;
            };
            if let Ok(map) = builder.build_restored(&bytes) {
                restored = Some((map, covers, epoch));
                break;
            }
        }
        let (mut map, base_seq, checkpoint_epoch) = match restored {
            Some((map, covers, epoch)) => (map, covers, Some(epoch)),
            None => (builder.clone().build()?, 0, None),
        };

        // Replay the WAL tail. Rotation happens exactly at checkpoint
        // triggers, so segments starting below the checkpoint's coverage
        // hold only folded-in batches. Replay is gap-checked: a record
        // whose sequence number does not continue the chain ends it.
        let mut segments: Vec<(u64, &str)> = names
            .iter()
            .filter_map(|n| parse_wal_name(n).map(|s| (s, n.as_str())))
            .collect();
        segments.sort_unstable();
        let mut next_seq = base_seq;
        let mut replayed = 0u64;
        let mut truncated = false;
        'replay: for &(start, name) in &segments {
            if start < base_seq {
                continue;
            }
            let Ok(bytes) = store.read(name) else {
                truncated = true;
                continue;
            };
            let (records, torn) = decode_segment(&bytes);
            for record in records {
                if record.seq != next_seq {
                    truncated = true;
                    break 'replay;
                }
                for scan in &record.scans {
                    // A scan that failed at original ingest fails
                    // identically here and mutates nothing; replay
                    // mirrors the writer's keep-going-past-bad-scans.
                    let _ = map.insert_points(scan.origin, &scan.points);
                }
                next_seq += 1;
                replayed += 1;
            }
            // A torn tail ends this segment but not the replay: a later
            // segment continuing the sequence chain (from a previous
            // degraded recovery) is still applied; the gap check above
            // guards against actual holes.
            truncated |= torn;
        }

        // Fold the recovered state into a fresh checkpoint so torn
        // segments can be retired and a crash loop cannot lose ground.
        // Failure degrades (health-flagged) instead of aborting.
        let snapshot = map.publish_snapshot()?;
        let mut health = ServiceHealth::default();
        match store.write_atomic(&ckpt_name(next_seq, snapshot.epoch()), &snapshot.to_bytes()) {
            Ok(()) => {
                health.last_checkpoint_epoch = Some(snapshot.epoch());
                health.last_checkpoint_seq = Some(next_seq);
                gc_below(store.as_ref(), next_seq);
                if names.iter().any(|n| *n == wal_name(next_seq)) {
                    // The segment the new writer reopens may end in torn
                    // bytes that would poison appends after them; it
                    // holds no surviving records, so retire it too.
                    let _ = store.remove(&wal_name(next_seq));
                }
            }
            Err(e) => health.checkpoint_failed = Some(e.to_string()),
        }

        let report = RecoveryReport {
            checkpoint_epoch,
            replayed_batches: replayed,
            truncated_tail: truncated,
        };
        let queue_capacity = builder.queue_capacity;
        let service =
            Self::spawn_with_map(map, queue_capacity, Some((store, policy)), next_seq, health)?;
        Ok((service, report))
    }

    /// The shared tail of [`Self::spawn`] and [`Self::recover`]: first
    /// publish, shared state, checkpoint thread, writer thread.
    fn spawn_with_map(
        mut map: OccupancyMap,
        queue_capacity: Option<usize>,
        durability: Option<(Arc<dyn DurableDir>, DurabilityPolicy)>,
        next_seq: u64,
        mut health: ServiceHealth,
    ) -> Result<Self, MapError> {
        let first = map.publish_snapshot()?;
        let mut stats = ServiceStats {
            publishes: 1,
            ..ServiceStats::default()
        };
        if let Some(s) = map.snapshot_stats() {
            stats.snapshot = s;
        }
        let mut writer_durability = None;
        let mut ckpt_parts = None;
        if let Some((store, policy)) = durability {
            let wal = match store.open_append(&wal_name(next_seq)) {
                Ok(f) => Some(f),
                Err(e) => {
                    health.wal_failed = Some(e.to_string());
                    None
                }
            };
            let (job_tx, job_rx) = mpsc::channel();
            writer_durability = Some(WriterDurability {
                policy,
                next_seq,
                publishes_since_ckpt: 0,
                job_tx,
                pending: Vec::new(),
            });
            ckpt_parts = Some((store, wal, job_rx));
        }
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                snapshot: first,
                stats,
                ring: VecDeque::new(),
                dropped_through: None,
                deferred_error: None,
                writer_error: None,
                health,
                shutdown: false,
            }),
        });
        let ckpt = ckpt_parts.map(|(store, wal, job_rx)| {
            let ckpt_shared = Arc::clone(&shared);
            spawn_service("map-durable", move || {
                durable_loop(job_rx, store, wal, ckpt_shared);
            })
        });
        let (sender, receiver) = match queue_capacity {
            Some(capacity) => {
                let (tx, rx) = mpsc::sync_channel(capacity);
                (CommandSender::Bounded(tx, capacity), rx)
            }
            None => {
                let (tx, rx) = mpsc::channel();
                (CommandSender::Unbounded(tx), rx)
            }
        };
        let writer_shared = Arc::clone(&shared);
        let writer = spawn_service("map-writer", move || {
            // Catch the writer's panics so they become a typed,
            // retrievable error instead of dying silently in `Drop`'s
            // join. The shared state is consistent at every lock
            // release, so unwinding past it is safe to observe.
            let result = catch_unwind(AssertUnwindSafe(|| {
                writer_loop(map, receiver, &writer_shared, writer_durability);
            }));
            let mut state = lock_unpoisoned(&writer_shared.state);
            state.shutdown = true;
            if let Err(payload) = result {
                state.writer_error = Some(MapError::WorkerPanicked(TaskPanic::from_payload(
                    payload.as_ref(),
                )));
            }
        });
        Ok(MapService {
            sender,
            shared,
            writer: Some(writer),
            ckpt,
            readers: Arc::new(WorkerPool::new(0)),
        })
    }

    /// Queues one scan for integration. Returns as soon as the scan is
    /// enqueued; it becomes visible in the snapshot published after the
    /// writer drains it ([`Self::flush`] to wait for that).
    ///
    /// # Errors
    ///
    /// [`MapError::ServiceShutdown`] when the writer is gone;
    /// [`MapError::Backpressure`] when a bounded queue
    /// ([`MapBuilder::queue_capacity`]) is full (the scan is *not*
    /// enqueued). Backend errors (e.g. an out-of-bounds origin) are
    /// deferred to the next [`Self::flush`].
    pub fn ingest(&self, scan: Scan) -> Result<(), MapError> {
        self.sender.try_ingest(Command::Ingest(scan))
    }

    /// [`Self::ingest`] from an origin and owned point buffer, skipping
    /// the `Scan` wrapper.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::ingest`].
    pub fn ingest_points(&self, origin: Point3, points: Vec<Point3>) -> Result<(), MapError> {
        self.sender
            .try_ingest(Command::IngestPoints(origin, points))
    }

    /// Waits until every scan queued before this call has been applied
    /// and published, then returns the fresh snapshot.
    ///
    /// # Errors
    ///
    /// [`MapError::ServiceShutdown`] when the writer is gone; otherwise
    /// the first backend error any queued scan hit since the last flush
    /// (the writer keeps going past bad scans — the map stays valid).
    pub fn flush(&self) -> Result<MapSnapshot, MapError> {
        let (ack, done) = mpsc::channel();
        self.sender.send_blocking(Command::Flush(ack))?;
        done.recv().map_err(|_| MapError::ServiceShutdown)?;
        let mut state = lock_unpoisoned(&self.shared.state);
        if let Some(e) = state.deferred_error.take() {
            return Err(e);
        }
        Ok(state.snapshot.clone())
    }

    /// The most recently published snapshot — one mutex-guarded `Arc`
    /// clone, never blocked by the writer's ingestion work. Snapshots
    /// (and their clones) remain fully usable after
    /// [`Self::shutdown`].
    pub fn snapshot(&self) -> MapSnapshot {
        lock_unpoisoned(&self.shared.state).snapshot.clone()
    }

    /// Subscribes to change sets: each subsequent publish's flipped
    /// voxels can be drained with [`ChangeSubscription::poll`].
    pub fn subscribe(&self) -> ChangeSubscription {
        let epoch = lock_unpoisoned(&self.shared.state).snapshot.epoch();
        ChangeSubscription {
            shared: Arc::clone(&self.shared),
            next_epoch: epoch.saturating_add(1),
        }
    }

    /// The worker pool the service offers for fanning reader workloads
    /// out (snapshot queries are `&self` and embarrassingly parallel).
    /// Distinct from the writer's own pool, so bulk reads never contend
    /// with ingestion dispatch.
    pub fn reader_pool(&self) -> &Arc<WorkerPool> {
        &self.readers
    }

    /// Cumulative ingest/publish counters.
    pub fn service_stats(&self) -> ServiceStats {
        lock_unpoisoned(&self.shared.state).stats
    }

    /// Requests a checkpoint now and blocks until it is durable: the
    /// serving snapshot is serialized off-thread, published atomically,
    /// and obsolete WAL segments and older checkpoints are retired.
    /// Covers every scan enqueued before this call (a bit more if later
    /// scans share the drained batch).
    ///
    /// # Errors
    ///
    /// [`MapError::Unsupported`] when the service has no
    /// [`MapBuilder::durability`] configured; [`MapError::Io`] when the
    /// checkpoint could not be made durable (the service keeps serving,
    /// degraded — see [`Self::health`]);
    /// [`MapError::ServiceShutdown`] when the writer or checkpoint
    /// thread is gone.
    pub fn checkpoint(&self) -> Result<(), MapError> {
        let (ack, done) = mpsc::channel();
        self.sender.send_blocking(Command::Checkpoint(ack))?;
        match done.recv() {
            Ok(result) => result,
            Err(_) => Err(MapError::ServiceShutdown),
        }
    }

    /// The service's durability health. Storage failures never kill the
    /// writer — they degrade the service to in-memory serving and are
    /// reported here (and, for explicit [`Self::checkpoint`] calls, in
    /// the call's own result).
    pub fn health(&self) -> ServiceHealth {
        lock_unpoisoned(&self.shared.state).health.clone()
    }

    /// Takes the typed error of a writer thread that died on a panic
    /// (`None` while the writer lives or exited cleanly). This is how a
    /// panic survives `Drop`'s silent join: check after
    /// [`Self::is_shut_down`] turns true unexpectedly.
    pub fn take_writer_error(&self) -> Option<MapError> {
        lock_unpoisoned(&self.shared.state).writer_error.take()
    }

    /// Parks the writer until the returned sender is dropped or sent
    /// to. Test hook for deterministically filling a bounded queue.
    #[doc(hidden)]
    pub fn debug_stall_writer(&self) -> Result<mpsc::Sender<()>, MapError> {
        let (release, gate) = mpsc::channel();
        self.sender.send_blocking(Command::Stall(gate))?;
        Ok(release)
    }

    /// Panics the writer thread when it drains this command. Test hook
    /// exercising the typed panic-capture path
    /// ([`Self::take_writer_error`], [`Self::shutdown`]) end to end.
    #[doc(hidden)]
    pub fn debug_panic_writer(&self) -> Result<(), MapError> {
        self.sender.send_blocking(Command::Panic)
    }

    /// Stops the writer after it drains everything already queued, and
    /// joins it (and the checkpoint thread, which finishes any queued
    /// checkpoint first). Published snapshots stay valid.
    ///
    /// # Errors
    ///
    /// [`MapError::WorkerPanicked`] when the writer (or checkpoint)
    /// thread died on a panic instead of draining cleanly; otherwise
    /// the first deferred backend error no flush has surfaced yet.
    pub fn shutdown(mut self) -> Result<(), MapError> {
        let _ = self.sender.send_blocking(Command::Shutdown);
        let writer_result = match self.writer.take() {
            Some(writer) => writer.join().map_err(MapError::from),
            None => Ok(()),
        };
        let ckpt_result = match self.ckpt.take() {
            Some(ckpt) => ckpt.join().map_err(MapError::from),
            None => Ok(()),
        };
        writer_result?;
        if let Some(e) = self.take_writer_error() {
            return Err(e);
        }
        ckpt_result?;
        let mut state = lock_unpoisoned(&self.shared.state);
        match state.deferred_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// True once the writer has exited (clean shutdown or panic).
    pub fn is_shut_down(&self) -> bool {
        lock_unpoisoned(&self.shared.state).shutdown
    }
}

impl Drop for MapService {
    /// Dropping the handle shuts the writer down (after draining the
    /// queue) and joins it. A writer panic is not lost here: it is
    /// recorded as a typed error retrievable through
    /// [`MapService::take_writer_error`] while the handle lives — or
    /// call [`MapService::shutdown`] to observe it directly.
    fn drop(&mut self) {
        let _ = self.sender.send_blocking(Command::Shutdown);
        // ServiceThreads join on drop; the checkpoint thread exits once
        // the writer drops its job channel.
        self.writer.take();
        self.ckpt.take();
    }
}

/// A reader's cursor into the service's change ring.
///
/// Obtained from [`MapService::subscribe`]; poll-driven, so a planner
/// can fold change sets in on its own cadence.
#[derive(Debug)]
pub struct ChangeSubscription {
    shared: Arc<ServiceShared>,
    /// The next publish epoch this subscriber has not seen.
    next_epoch: u32,
}

impl ChangeSubscription {
    /// Drains every change set published since the last poll, in publish
    /// order (keys are sorted within one publish and may repeat across
    /// publishes). An empty vector means no publish happened since.
    ///
    /// # Errors
    ///
    /// [`MapError::Lagged`] when the ring evicted epochs this subscriber
    /// had not seen; the subscription resumes from the oldest retained
    /// epoch, so the *next* poll succeeds —
    /// resynchronize content from [`MapService::snapshot`].
    /// [`MapError::ServiceShutdown`] when the writer is gone *and*
    /// nothing is left to drain.
    pub fn poll(&mut self) -> Result<Vec<VoxelKey>, MapError> {
        let state = lock_unpoisoned(&self.shared.state);
        if let Some(through) = state.dropped_through {
            if through >= self.next_epoch {
                let missed = u64::from(through - self.next_epoch) + 1;
                self.next_epoch = through.saturating_add(1);
                return Err(MapError::Lagged { missed });
            }
        }
        let mut out = Vec::new();
        for (epoch, keys) in state.ring.iter() {
            if *epoch >= self.next_epoch {
                out.extend_from_slice(keys);
                self.next_epoch = epoch.saturating_add(1);
            }
        }
        if out.is_empty() && state.shutdown {
            return Err(MapError::ServiceShutdown);
        }
        Ok(out)
    }
}

/// One request handed to the `map-durable` thread, which owns every
/// blocking storage operation so the writer never waits on an fsync.
enum DurableJob {
    /// Append one encoded batch record to the open segment and sync it.
    /// `done` fires when the record is durable (or the log degraded);
    /// the writer collects these and waits only at flush points — the
    /// group-commit overlap that keeps the WAL nearly free.
    Append {
        frame: Vec<u8>,
        done: mpsc::Sender<()>,
    },
    /// Open a fresh WAL segment (the rotation point at each checkpoint,
    /// and the retry point where a degraded log heals).
    Rotate { name: String },
    /// Serialize the pinned snapshot and publish it atomically.
    Checkpoint {
        snapshot: MapSnapshot,
        /// Every batch with `seq < covers_seq` is folded in. FIFO with
        /// the `Append`s guarantees all of them are synced — into the
        /// pre-rotation segment — before this job runs.
        covers_seq: u64,
        /// Present for explicit [`MapService::checkpoint`] calls.
        ack: Option<mpsc::Sender<Result<(), MapError>>>,
    },
}

/// The writer-side durability state: the batch sequence counter, the
/// checkpoint cadence, and the channel to the durable thread.
struct WriterDurability {
    policy: DurabilityPolicy,
    /// Sequence number of the next drained batch.
    next_seq: u64,
    publishes_since_ckpt: u32,
    job_tx: mpsc::Sender<DurableJob>,
    /// Completions of appends not yet known durable; drained before any
    /// flush is acknowledged.
    pending: Vec<mpsc::Receiver<()>>,
}

impl WriterDurability {
    /// Encodes one batch record and queues it for append+sync *before*
    /// the batch is applied, so the log can never lag published state
    /// by more than the in-flight batch. The sequence number is
    /// consumed even when degraded, so checkpoint coverage stays
    /// aligned with applied batches.
    fn log_batch(&mut self, scans: &[(Point3, &[Point3])], shared: &ServiceShared) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame = encode_record_parts(seq, scans);
        let (done, done_rx) = mpsc::channel();
        if self
            .job_tx
            .send(DurableJob::Append { frame, done })
            .is_err()
        {
            // The durable thread is gone (only an injected panic kills
            // it); degrade instead of killing the writer.
            lock_unpoisoned(&shared.state).health.wal_failed =
                Some("the durability thread has died".to_owned());
            return;
        }
        self.pending.push(done_rx);
    }

    /// Blocks until every queued append is synced (or the log has
    /// degraded). Called before flush acknowledgements: a returned
    /// flush means its scans are durable or the service is
    /// health-flagged.
    fn wait_pending(&mut self, shared: &ServiceShared) {
        for done in self.pending.drain(..) {
            if done.recv().is_err() {
                let mut state = lock_unpoisoned(&shared.state);
                if state.health.wal_failed.is_none() {
                    state.health.wal_failed = Some("the durability thread has died".to_owned());
                }
            }
        }
    }

    /// Counts one publish and cuts a checkpoint when the policy's
    /// cadence comes due.
    fn note_publish(&mut self, shared: &ServiceShared) {
        self.publishes_since_ckpt = self.publishes_since_ckpt.saturating_add(1);
        if let DurabilityPolicy::EveryNEpochs(n) = self.policy {
            if self.publishes_since_ckpt >= n.max(1) {
                let snapshot = lock_unpoisoned(&shared.state).snapshot.clone();
                self.trigger_checkpoint(snapshot, None, shared);
            }
        }
    }

    /// Queues a rotation to a fresh WAL segment (named by the coverage
    /// boundary, so garbage collection aligns with it) followed by the
    /// checkpoint itself.
    fn trigger_checkpoint(
        &mut self,
        snapshot: MapSnapshot,
        ack: Option<mpsc::Sender<Result<(), MapError>>>,
        shared: &ServiceShared,
    ) {
        self.publishes_since_ckpt = 0;
        let covers = self.next_seq;
        let sent = self
            .job_tx
            .send(DurableJob::Rotate {
                name: wal_name(covers),
            })
            .and_then(|()| {
                self.job_tx.send(DurableJob::Checkpoint {
                    snapshot,
                    covers_seq: covers,
                    ack,
                })
            });
        if sent.is_err() {
            // The durable thread is gone (only an injected panic kills
            // it). Degrade; the dropped ack surfaces as
            // [`MapError::ServiceShutdown`] at the caller.
            lock_unpoisoned(&shared.state).health.checkpoint_failed =
                Some("the durability thread has died".to_owned());
        }
    }
}

/// The durable thread: owns the open WAL segment and the store, runs
/// every append/fsync/checkpoint off the writer. Storage stalls never
/// block ingestion — the writer only waits at flush points.
fn durable_loop(
    receiver: mpsc::Receiver<DurableJob>,
    store: Arc<dyn DurableDir>,
    mut wal: Option<Box<dyn DurableFile>>,
    shared: Arc<ServiceShared>,
) {
    while let Ok(job) = receiver.recv() {
        match job {
            DurableJob::Append { mut frame, done } => {
                if let Some(w) = wal.as_mut() {
                    seal_record(&mut frame);
                    if let Err(e) = w.append(&frame).and_then(|()| w.sync()) {
                        // Degrade: close the log, flag health, keep
                        // serving. Rotation is the retry point.
                        wal = None;
                        lock_unpoisoned(&shared.state).health.wal_failed = Some(e.to_string());
                    }
                }
                let _ = done.send(());
            }
            DurableJob::Rotate { name } => match store.open_append(&name) {
                Ok(f) => {
                    wal = Some(f);
                    lock_unpoisoned(&shared.state).health.wal_failed = None;
                }
                Err(e) => {
                    wal = None;
                    lock_unpoisoned(&shared.state).health.wal_failed = Some(e.to_string());
                }
            },
            DurableJob::Checkpoint {
                snapshot,
                covers_seq,
                ack,
            } => {
                let epoch = snapshot.epoch();
                let bytes = snapshot.to_bytes();
                let result = store.write_atomic(&ckpt_name(covers_seq, epoch), &bytes);
                {
                    let mut state = lock_unpoisoned(&shared.state);
                    match &result {
                        Ok(()) => {
                            state.health.checkpoint_failed = None;
                            state.health.last_checkpoint_epoch = Some(epoch);
                            state.health.last_checkpoint_seq = Some(covers_seq);
                        }
                        Err(e) => state.health.checkpoint_failed = Some(e.to_string()),
                    }
                }
                if result.is_ok() {
                    gc_below(store.as_ref(), covers_seq);
                }
                if let Some(ack) = ack {
                    let _ = ack.send(result.map_err(MapError::Io));
                }
            }
        }
    }
}

/// Removes blobs a durable checkpoint covering `seq < covers`
/// obsoletes: WAL segments starting below it, older checkpoints, and
/// stale in-flight temp files. Best-effort — a failed removal costs
/// disk space, never correctness.
fn gc_below(store: &dyn DurableDir, covers: u64) {
    let Ok(names) = store.list() else { return };
    for name in names {
        let stale = if let Some(start) = parse_wal_name(&name) {
            start < covers
        } else if let Some((c, _)) = parse_ckpt_name(&name) {
            c < covers
        } else {
            name.starts_with(crate::durable::TMP_PREFIX)
        };
        if stale {
            let _ = store.remove(&name);
        }
    }
}

/// The writer loop: drain whatever is queued, journal it, apply it,
/// publish once, acknowledge flushes — so a burst of scans costs one
/// publish, and the snapshot a flush returns covers everything queued
/// before it.
fn writer_loop(
    mut map: OccupancyMap,
    receiver: mpsc::Receiver<Command>,
    shared: &ServiceShared,
    mut durability: Option<WriterDurability>,
) {
    'serve: loop {
        let first = match receiver.recv() {
            Ok(cmd) => cmd,
            Err(_) => break, // every handle gone; nothing more can arrive
        };
        let mut batch = vec![first];
        while let Ok(cmd) = receiver.try_recv() {
            batch.push(cmd);
        }
        // Journal the batch's scans before any of them mutates the map:
        // an acknowledged flush implies its scans are either durable or
        // the service is health-flagged as degraded.
        if let Some(d) = durability.as_mut() {
            let scans: Vec<(Point3, &[Point3])> = batch
                .iter()
                .filter_map(|cmd| match cmd {
                    Command::Ingest(scan) => Some((scan.origin, scan.cloud.points())),
                    Command::IngestPoints(origin, points) => Some((*origin, points.as_slice())),
                    _ => None,
                })
                .collect();
            if !scans.is_empty() {
                d.log_batch(&scans, shared);
            }
        }
        let mut acks = Vec::new();
        let mut ckpt_acks = Vec::new();
        let mut stop = false;
        let mut applied = false;
        for cmd in batch {
            let result = match cmd {
                Command::Ingest(scan) => Some(map.insert(&scan)),
                Command::IngestPoints(origin, points) => Some(map.insert_points(origin, &points)),
                Command::Flush(ack) => {
                    acks.push(ack);
                    None
                }
                Command::Checkpoint(ack) => {
                    ckpt_acks.push(ack);
                    None
                }
                Command::Stall(gate) => {
                    let _ = gate.recv();
                    None
                }
                // omu-lint: allow(no-panic) — deliberate test hook; the
                // spawn wrapper catches it into a typed writer error.
                Command::Panic => panic!("injected writer panic (debug_panic_writer)"),
                Command::Shutdown => {
                    stop = true;
                    None
                }
            };
            if let Some(result) = result {
                applied = true;
                let mut state = lock_unpoisoned(&shared.state);
                match result {
                    Ok(stats) => {
                        state.stats.scans_ingested += 1;
                        state.stats.rays += stats.rays;
                    }
                    Err(e) => {
                        state.stats.ingest_errors += 1;
                        if state.deferred_error.is_none() {
                            state.deferred_error = Some(e);
                        }
                    }
                }
            }
        }
        // Publish once per drained batch — but only when something was
        // applied (a bare flush must not burn an epoch), and always
        // before acknowledging, so flush-visibility holds.
        if applied {
            publish(&mut map, shared);
            if let Some(d) = durability.as_mut() {
                d.note_publish(shared);
            }
        }
        for ack in ckpt_acks {
            match durability.as_mut() {
                Some(d) => {
                    let snapshot = lock_unpoisoned(&shared.state).snapshot.clone();
                    d.trigger_checkpoint(snapshot, Some(ack), shared);
                }
                None => {
                    let _ = ack.send(Err(MapError::Unsupported {
                        backend: "service",
                        feature: "checkpoints (configure MapBuilder::durability)",
                    }));
                }
            }
        }
        if !acks.is_empty() {
            // A flush ack promises durability (or a health flag), so
            // this is the group-commit point: wait for every queued WAL
            // sync before acknowledging.
            if let Some(d) = durability.as_mut() {
                d.wait_pending(shared);
            }
        }
        for ack in acks {
            let _ = ack.send(());
        }
        if stop {
            break 'serve;
        }
    }
}

fn publish(map: &mut OccupancyMap, shared: &ServiceShared) {
    let changed: Arc<[VoxelKey]> = map.drain_changed_keys().into();
    let snapshot = match map.publish_snapshot() {
        Ok(s) => s,
        // Unreachable in practice: `spawn` already published once, which
        // proves the backend supports snapshots. Keep the old snapshot
        // rather than panicking the writer.
        Err(_) => return,
    };
    let epoch = snapshot.epoch();
    let mut state = lock_unpoisoned(&shared.state);
    state.snapshot = snapshot;
    state.stats.publishes += 1;
    if let Some(s) = map.snapshot_stats() {
        state.stats.snapshot = s;
    }
    state.ring.push_back((epoch, changed));
    while state.ring.len() > CHANGE_RING_EPOCHS {
        if let Some((evicted, _)) = state.ring.pop_front() {
            state.dropped_through = Some(evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Backend;
    use omu_geometry::PointCloud;

    fn scan(step: u64) -> Scan {
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            (0..32)
                .map(|i| {
                    let a = (step * 32 + i) as f64 * 0.111;
                    Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
                })
                .collect::<PointCloud>(),
        )
    }

    #[test]
    fn service_snapshot_matches_serial_map() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let mut serial = MapBuilder::new(0.1).build().unwrap();
        for step in 0..4 {
            service.ingest(scan(step)).unwrap();
            serial.insert(&scan(step)).unwrap();
        }
        let snap = service.flush().unwrap();
        assert_eq!(snap.canonical_leaves(), serial.snapshot());
        assert_eq!(
            snap.occupancy_at(Point3::new(2.0, 0.0, 0.2)).unwrap(),
            Occupancy::Occupied
        );
        let stats = service.service_stats();
        assert_eq!(stats.scans_ingested, 4);
        assert!(stats.publishes >= 2, "initial publish plus batches");
        service.shutdown().unwrap();
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let early = service.flush().unwrap();
        let early_leaves = early.canonical_leaves();
        for step in 1..4 {
            service.ingest(scan(step)).unwrap();
        }
        let late = service.flush().unwrap();
        assert!(late.epoch() > early.epoch());
        assert_ne!(late.canonical_leaves(), early_leaves);
        assert_eq!(early.canonical_leaves(), early_leaves, "pinned epoch");
        service.shutdown().unwrap();
    }

    #[test]
    fn fixed_backend_serves_identically_to_direct_map() {
        let service =
            MapService::spawn(MapBuilder::new(0.1).backend(Backend::SoftwareFixed)).unwrap();
        let mut serial = MapBuilder::new(0.1)
            .backend(Backend::SoftwareFixed)
            .build()
            .unwrap();
        service.ingest(scan(0)).unwrap();
        serial.insert(&scan(0)).unwrap();
        let snap = service.flush().unwrap();
        assert!(matches!(snap, MapSnapshot::SoftwareFixed(_)));
        assert_eq!(snap.canonical_leaves(), serial.snapshot());
        service.shutdown().unwrap();
    }

    #[test]
    fn subscription_drains_changes_and_reports_lag() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let mut sub = service.subscribe();
        service.ingest(scan(0)).unwrap();
        let snap = service.flush().unwrap();
        let changed = sub.poll().unwrap();
        assert!(!changed.is_empty());
        for &key in &changed {
            assert_ne!(snap.occupancy(key), Occupancy::Unknown);
        }
        assert!(sub.poll().unwrap().is_empty(), "drained");

        // Starve a second subscriber past the ring capacity: each flush
        // with work publishes exactly one epoch.
        let mut slow = service.subscribe();
        for _ in 0..(CHANGE_RING_EPOCHS + 3) {
            service.ingest(scan(1)).unwrap();
            service.flush().unwrap();
        }
        match slow.poll() {
            Err(MapError::Lagged { missed }) => assert!(missed >= 1),
            other => panic!("expected Lagged, got {other:?}"),
        }
        // Recovered: the next poll resumes from the retained window.
        slow.poll().unwrap();
        service.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_typed_and_snapshots_survive_it() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let snap = service.flush().unwrap();
        let mut sub = service.subscribe();
        service.shutdown().unwrap();
        assert_eq!(
            snap.occupancy_at(Point3::new(2.0, 0.0, 0.2)).unwrap(),
            Occupancy::Occupied
        );
        assert!(matches!(sub.poll(), Err(MapError::ServiceShutdown)));
    }

    #[test]
    fn ingest_after_writer_death_is_shutdown_error() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        // Simulate the handle outliving the writer by asking it to stop.
        service.sender.send_blocking(Command::Shutdown).unwrap();
        while !service.is_shut_down() {
            std::thread::yield_now();
        }
        // The channel stays open while the handle lives, so a late ingest
        // is detected at flush time: the queue is never drained again.
        let snap = service.snapshot();
        assert!(snap.is_empty());
    }

    #[test]
    fn bad_scan_surfaces_at_flush_and_map_stays_usable() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let far = *service.snapshot().converter();
        let bad_origin = Point3::new(far.map_half_extent() + 5.0, 0.0, 0.0);
        service
            .ingest(Scan::new(bad_origin, PointCloud::new()))
            .unwrap();
        service.ingest(scan(0)).unwrap();
        match service.flush() {
            Err(MapError::OutOfBounds(_)) => {}
            other => panic!("expected deferred OutOfBounds, got {other:?}"),
        }
        // The good scan was still applied and the error drained.
        let snap = service.flush().unwrap();
        assert!(!snap.is_empty());
        assert_eq!(service.service_stats().ingest_errors, 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn concurrent_readers_on_the_reader_pool_see_published_epochs() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let reference = service.flush().unwrap().canonical_leaves();
        let pool = Arc::clone(service.reader_pool());
        let results: Mutex<Vec<Vec<(VoxelKey, u8, f32)>>> = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..8 {
                let snap = service.snapshot();
                let results = &results;
                s.spawn(move || {
                    let leaves = snap.canonical_leaves();
                    results.lock().unwrap().push(leaves);
                });
            }
            // Keep writing while the readers run.
            for step in 1..4 {
                service.ingest(scan(step)).unwrap();
            }
        });
        for leaves in results.into_inner().unwrap() {
            assert_eq!(leaves, reference);
        }
        service.flush().unwrap();
        service.shutdown().unwrap();
    }
}
