//! [`MapService`]: lock-free concurrent reads under live writes.
//!
//! The service owns an [`OccupancyMap`] on a dedicated writer thread
//! (spawned through `omu-pool`, the one crate allowed to own thread
//! lifecycle) fed by a scan queue. After each drained batch the writer
//! publishes an epoch-pinned [`MapSnapshot`] — a cheaply clonable read
//! handle any number of reader threads can query without locks, served
//! bit-identically to the live map at the publish instant while the
//! writer keeps streaming (the octree's row-granular copy-on-write
//! machinery keeps published rows immutable; see the octree crate's
//! snapshot docs for the epoch/reclamation rules).
//!
//! Readers that need *deltas* instead of full snapshots subscribe to the
//! change ring: each publish appends the set of voxels whose occupancy
//! classification flipped, and [`ChangeSubscription::poll`] drains
//! everything since the subscriber's last poll. The ring is bounded; a
//! subscriber that falls more than [`CHANGE_RING_EPOCHS`] publishes
//! behind gets a typed [`MapError::Lagged`] and resynchronizes from a
//! fresh snapshot.
//!
//! # Examples
//!
//! ```
//! use omu_map::{MapBuilder, MapService};
//! use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), omu_map::MapError> {
//! let service = MapService::spawn(MapBuilder::new(0.1))?;
//! service.ingest(Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
//! ))?;
//! let snap = service.flush()?; // wait until the scan is applied
//! assert_eq!(
//!     snap.occupancy_at(Point3::new(1.0, 0.0, 0.25))?,
//!     Occupancy::Occupied
//! );
//! service.shutdown()?;
//! // The snapshot outlives the service.
//! assert!(!snap.is_empty());
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Mutex, MutexGuard};

use omu_geometry::{KeyConverter, Occupancy, Point3, Scan, VoxelKey};
use omu_octree::{LeafInfo, RayCastResult, Snapshot, SnapshotStats, WorkerPool};
use omu_pool::{spawn_service, ServiceThread};

use crate::builder::MapBuilder;
use crate::error::MapError;
use crate::map::OccupancyMap;

/// Publish epochs of change sets the service retains for slow
/// subscribers before evicting the oldest (and reporting
/// [`MapError::Lagged`] to whoever needed it).
pub const CHANGE_RING_EPOCHS: usize = 64;

/// Lock a mutex, recovering from poisoning: the guarded service state is
/// consistent at every release point (the writer publishes a fully-built
/// snapshot or nothing), so a poison flag carries no information.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An epoch-pinned, cheaply clonable read handle over a map published by
/// [`MapService`] (or directly by
/// [`OccupancyMap::publish_snapshot`]). All queries are lock-free and
/// bit-identical to querying the live map at the publish instant; clones
/// share the pin, and dropping the last clone lets the writer recycle
/// the rows it copied on the snapshot's behalf.
#[derive(Debug, Clone)]
pub enum MapSnapshot {
    /// Snapshot of an `f32` software tree.
    Software(Snapshot<f32>),
    /// Snapshot of a fixed-point software tree.
    SoftwareFixed(Snapshot<omu_geometry::FixedLogOdds>),
}

/// Dispatch one expression over both value representations.
macro_rules! with_snap {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            MapSnapshot::Software($s) => $body,
            MapSnapshot::SoftwareFixed($s) => $body,
        }
    };
}

impl MapSnapshot {
    /// The write epoch this snapshot pins: queries observe exactly the
    /// writes of epochs `0..=epoch()`.
    pub fn epoch(&self) -> u32 {
        with_snap!(self, s => s.epoch())
    }

    /// True when nothing had been observed at publish time.
    pub fn is_empty(&self) -> bool {
        with_snap!(self, s => s.is_empty())
    }

    /// The map resolution in metres.
    pub fn resolution(&self) -> f64 {
        with_snap!(self, s => s.resolution())
    }

    /// The key/coordinate converter.
    pub fn converter(&self) -> &KeyConverter {
        with_snap!(self, s => s.converter())
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&self, key: VoxelKey) -> Occupancy {
        with_snap!(self, s => s.occupancy(key))
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the point is outside the
    /// addressable map.
    pub fn occupancy_at(&self, point: Point3) -> Result<Occupancy, MapError> {
        Ok(with_snap!(self, s => s.occupancy_at(point))?)
    }

    /// The stored log-odds covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        with_snap!(self, s => s.logodds(key))
    }

    /// Classifies a batch of points in input order through one
    /// cached-descent reader (Morton-coalesced, like the live map's
    /// batched query engine).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when any point is outside the map
    /// (detected before any classification runs).
    pub fn occupancy_batch(&self, points: &[Point3]) -> Result<Vec<Occupancy>, MapError> {
        let conv = *self.converter();
        let keys = points
            .iter()
            .map(|&p| conv.coord_to_key(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.occupancy_batch_keys(&keys))
    }

    /// [`Self::occupancy_batch`] by voxel key (infallible).
    pub fn occupancy_batch_keys(&self, keys: &[VoxelKey]) -> Vec<Occupancy> {
        with_snap!(self, s => s.query_batch(keys))
    }

    /// Casts a query ray (OctoMap `castRay` semantics, identical to
    /// [`crate::QueryView::cast_ray`] on the live map).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the origin is outside the map or
    /// the direction is degenerate.
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        Ok(with_snap!(self, s => s.cast_ray(origin, direction, max_range, ignore_unknown))?)
    }

    /// Casts a batch of query rays through one cached-descent reader,
    /// returning results in input order.
    ///
    /// # Errors
    ///
    /// The first [`MapError::OutOfBounds`] in input order.
    pub fn cast_rays(
        &self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<Vec<RayCastResult>, MapError> {
        with_snap!(self, s => s.cast_rays(rays, max_range, ignore_unknown))
            .into_iter()
            .map(|r| r.map_err(MapError::from))
            .collect()
    }

    /// Sphere collision probe (the motion-planning query of the paper's
    /// Fig. 1).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the probe region leaves the map.
    pub fn collides_sphere(&self, center: Point3, radius: f64) -> Result<bool, MapError> {
        Ok(with_snap!(self, s => s.collides_sphere(center, radius))?)
    }

    /// The leaves intersecting the key box `[min, max]`, inclusive per
    /// axis.
    pub fn leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        with_snap!(self, s => s.iter_leaves_in_box(min, max).collect())
    }

    /// The leaves intersecting the metric box spanned by `min` and `max`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when a corner leaves the map.
    pub fn leaves_in_region(&self, min: Point3, max: Point3) -> Result<Vec<LeafInfo>, MapError> {
        let conv = *self.converter();
        let lo = conv.coord_to_key(min)?;
        let hi = conv.coord_to_key(max)?;
        Ok(self.leaves_in_box(lo, hi))
    }

    /// The canonical sorted leaf list `(key, depth, logodds)` — the
    /// equivalence suite's comparison format, identical to
    /// [`OccupancyMap::snapshot`] on the live map at the pinned epoch.
    pub fn canonical_leaves(&self) -> Vec<(VoxelKey, u8, f32)> {
        with_snap!(self, s => s.canonical_leaves())
    }
}

/// Cumulative service counters, snapshotted via
/// [`MapService::service_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Scans the writer has applied.
    pub scans_ingested: u64,
    /// Scans rejected by the backend (typed error deferred to the next
    /// [`MapService::flush`]).
    pub ingest_errors: u64,
    /// Rays integrated across all applied scans.
    pub rays: u64,
    /// Snapshots the writer has published (one per drained queue batch,
    /// plus the initial empty publish).
    pub publishes: u64,
    /// The octree's snapshot/copy-on-write bookkeeping at the last
    /// publish.
    pub snapshot: SnapshotStats,
}

/// One queued writer command.
enum Command {
    Ingest(Scan),
    IngestPoints(Point3, Vec<Point3>),
    /// Publish and acknowledge: everything sent before this command is
    /// applied and visible once the ack arrives.
    Flush(mpsc::Sender<()>),
    Shutdown,
}

/// State shared between the service handle, its subscriptions, and the
/// writer thread. One plain mutex: the writer takes it once per publish
/// (milliseconds apart), readers once per `snapshot()`/`poll()` call to
/// clone an `Arc`-backed handle out — queries themselves never touch it.
#[derive(Debug)]
struct ServiceShared {
    state: Mutex<ServiceState>,
}

#[derive(Debug)]
struct ServiceState {
    snapshot: MapSnapshot,
    stats: ServiceStats,
    /// `(publish epoch, voxels whose classification flipped in it)`,
    /// oldest first, at most [`CHANGE_RING_EPOCHS`] entries.
    ring: VecDeque<(u32, Arc<[VoxelKey]>)>,
    /// Highest publish epoch whose change set has been evicted from the
    /// ring (`None` until the first eviction) — what turns a slow
    /// subscriber's gap into a typed [`MapError::Lagged`].
    dropped_through: Option<u32>,
    /// First backend error since the last flush, surfaced there.
    deferred_error: Option<MapError>,
    shutdown: bool,
}

/// A single-writer map server: scans stream in through a queue, an
/// epoch-pinned [`MapSnapshot`] streams out after every drained batch,
/// and any number of concurrent readers query snapshots lock-free while
/// the writer keeps ingesting. See the module docs for the serving
/// model.
#[derive(Debug)]
pub struct MapService {
    sender: mpsc::Sender<Command>,
    shared: Arc<ServiceShared>,
    writer: Option<ServiceThread>,
    readers: Arc<WorkerPool>,
}

impl MapService {
    /// Builds the map and spawns its writer thread. Change detection is
    /// forced on (it feeds the subscription ring), so the builder must
    /// target a software backend.
    ///
    /// # Errors
    ///
    /// Everything [`MapBuilder::build`] can return;
    /// [`MapError::Unsupported`] for the accelerator backend (which can
    /// neither track changes nor publish snapshots).
    pub fn spawn(builder: MapBuilder) -> Result<Self, MapError> {
        let mut map = builder.change_detection(true).build()?;
        let first = map.publish_snapshot()?;
        let mut stats = ServiceStats {
            publishes: 1,
            ..ServiceStats::default()
        };
        if let Some(s) = map.snapshot_stats() {
            stats.snapshot = s;
        }
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                snapshot: first,
                stats,
                ring: VecDeque::new(),
                dropped_through: None,
                deferred_error: None,
                shutdown: false,
            }),
        });
        let (sender, receiver) = mpsc::channel();
        let writer_shared = Arc::clone(&shared);
        let writer = spawn_service("map-writer", move || {
            writer_loop(map, receiver, writer_shared);
        });
        Ok(MapService {
            sender,
            shared,
            writer: Some(writer),
            readers: Arc::new(WorkerPool::new(0)),
        })
    }

    /// Queues one scan for integration. Returns as soon as the scan is
    /// enqueued; it becomes visible in the snapshot published after the
    /// writer drains it ([`Self::flush`] to wait for that).
    ///
    /// # Errors
    ///
    /// [`MapError::ServiceShutdown`] when the writer is gone. Backend
    /// errors (e.g. an out-of-bounds origin) are deferred to the next
    /// [`Self::flush`].
    pub fn ingest(&self, scan: Scan) -> Result<(), MapError> {
        self.sender
            .send(Command::Ingest(scan))
            .map_err(|_| MapError::ServiceShutdown)
    }

    /// [`Self::ingest`] from an origin and owned point buffer, skipping
    /// the `Scan` wrapper.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::ingest`].
    pub fn ingest_points(&self, origin: Point3, points: Vec<Point3>) -> Result<(), MapError> {
        self.sender
            .send(Command::IngestPoints(origin, points))
            .map_err(|_| MapError::ServiceShutdown)
    }

    /// Waits until every scan queued before this call has been applied
    /// and published, then returns the fresh snapshot.
    ///
    /// # Errors
    ///
    /// [`MapError::ServiceShutdown`] when the writer is gone; otherwise
    /// the first backend error any queued scan hit since the last flush
    /// (the writer keeps going past bad scans — the map stays valid).
    pub fn flush(&self) -> Result<MapSnapshot, MapError> {
        let (ack, done) = mpsc::channel();
        self.sender
            .send(Command::Flush(ack))
            .map_err(|_| MapError::ServiceShutdown)?;
        done.recv().map_err(|_| MapError::ServiceShutdown)?;
        let mut state = lock_unpoisoned(&self.shared.state);
        if let Some(e) = state.deferred_error.take() {
            return Err(e);
        }
        Ok(state.snapshot.clone())
    }

    /// The most recently published snapshot — one mutex-guarded `Arc`
    /// clone, never blocked by the writer's ingestion work. Snapshots
    /// (and their clones) remain fully usable after
    /// [`Self::shutdown`].
    pub fn snapshot(&self) -> MapSnapshot {
        lock_unpoisoned(&self.shared.state).snapshot.clone()
    }

    /// Subscribes to change sets: each subsequent publish's flipped
    /// voxels can be drained with [`ChangeSubscription::poll`].
    pub fn subscribe(&self) -> ChangeSubscription {
        let epoch = lock_unpoisoned(&self.shared.state).snapshot.epoch();
        ChangeSubscription {
            shared: Arc::clone(&self.shared),
            next_epoch: epoch.saturating_add(1),
        }
    }

    /// The worker pool the service offers for fanning reader workloads
    /// out (snapshot queries are `&self` and embarrassingly parallel).
    /// Distinct from the writer's own pool, so bulk reads never contend
    /// with ingestion dispatch.
    pub fn reader_pool(&self) -> &Arc<WorkerPool> {
        &self.readers
    }

    /// Cumulative ingest/publish counters.
    pub fn service_stats(&self) -> ServiceStats {
        lock_unpoisoned(&self.shared.state).stats
    }

    /// Stops the writer after it drains everything already queued, and
    /// joins its thread. Published snapshots stay valid.
    ///
    /// # Errors
    ///
    /// [`MapError::WorkerPanicked`] when the writer thread died on a
    /// panic instead of draining cleanly.
    pub fn shutdown(mut self) -> Result<(), MapError> {
        let _ = self.sender.send(Command::Shutdown);
        match self.writer.take() {
            Some(writer) => writer.join().map_err(MapError::from),
            None => Ok(()),
        }
    }

    /// True once the writer has exited (clean shutdown or panic).
    pub fn is_shut_down(&self) -> bool {
        lock_unpoisoned(&self.shared.state).shutdown
    }
}

impl Drop for MapService {
    /// Dropping the handle shuts the writer down (after draining the
    /// queue) and joins it; a writer panic is swallowed here — call
    /// [`MapService::shutdown`] to observe it.
    fn drop(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        // ServiceThread joins on drop.
        self.writer.take();
    }
}

/// A reader's cursor into the service's change ring.
///
/// Obtained from [`MapService::subscribe`]; poll-driven, so a planner
/// can fold change sets in on its own cadence.
#[derive(Debug)]
pub struct ChangeSubscription {
    shared: Arc<ServiceShared>,
    /// The next publish epoch this subscriber has not seen.
    next_epoch: u32,
}

impl ChangeSubscription {
    /// Drains every change set published since the last poll, in publish
    /// order (keys are sorted within one publish and may repeat across
    /// publishes). An empty vector means no publish happened since.
    ///
    /// # Errors
    ///
    /// [`MapError::Lagged`] when the ring evicted epochs this subscriber
    /// had not seen; the subscription resumes from the oldest retained
    /// epoch, so the *next* poll succeeds —
    /// resynchronize content from [`MapService::snapshot`].
    /// [`MapError::ServiceShutdown`] when the writer is gone *and*
    /// nothing is left to drain.
    pub fn poll(&mut self) -> Result<Vec<VoxelKey>, MapError> {
        let state = lock_unpoisoned(&self.shared.state);
        if let Some(through) = state.dropped_through {
            if through >= self.next_epoch {
                let missed = u64::from(through - self.next_epoch) + 1;
                self.next_epoch = through.saturating_add(1);
                return Err(MapError::Lagged { missed });
            }
        }
        let mut out = Vec::new();
        for (epoch, keys) in state.ring.iter() {
            if *epoch >= self.next_epoch {
                out.extend_from_slice(keys);
                self.next_epoch = epoch.saturating_add(1);
            }
        }
        if out.is_empty() && state.shutdown {
            return Err(MapError::ServiceShutdown);
        }
        Ok(out)
    }
}

/// The writer loop: drain whatever is queued, apply it, publish once,
/// acknowledge flushes — so a burst of scans costs one publish, and the
/// snapshot a flush returns covers everything queued before it.
fn writer_loop(
    mut map: OccupancyMap,
    receiver: mpsc::Receiver<Command>,
    shared: Arc<ServiceShared>,
) {
    'serve: loop {
        let first = match receiver.recv() {
            Ok(cmd) => cmd,
            Err(_) => break, // every handle gone; nothing more can arrive
        };
        let mut batch = vec![first];
        while let Ok(cmd) = receiver.try_recv() {
            batch.push(cmd);
        }
        let mut acks = Vec::new();
        let mut stop = false;
        let mut applied = false;
        for cmd in batch {
            let result = match cmd {
                Command::Ingest(scan) => Some(map.insert(&scan)),
                Command::IngestPoints(origin, points) => Some(map.insert_points(origin, &points)),
                Command::Flush(ack) => {
                    acks.push(ack);
                    None
                }
                Command::Shutdown => {
                    stop = true;
                    None
                }
            };
            if let Some(result) = result {
                applied = true;
                let mut state = lock_unpoisoned(&shared.state);
                match result {
                    Ok(stats) => {
                        state.stats.scans_ingested += 1;
                        state.stats.rays += stats.rays;
                    }
                    Err(e) => {
                        state.stats.ingest_errors += 1;
                        if state.deferred_error.is_none() {
                            state.deferred_error = Some(e);
                        }
                    }
                }
            }
        }
        // Publish once per drained batch — but only when something was
        // applied (a bare flush must not burn an epoch), and always
        // before acknowledging, so flush-visibility holds.
        if applied {
            publish(&mut map, &shared);
        }
        for ack in acks {
            let _ = ack.send(());
        }
        if stop {
            break 'serve;
        }
    }
    lock_unpoisoned(&shared.state).shutdown = true;
}

fn publish(map: &mut OccupancyMap, shared: &Arc<ServiceShared>) {
    let changed: Arc<[VoxelKey]> = map.drain_changed_keys().into();
    let snapshot = match map.publish_snapshot() {
        Ok(s) => s,
        // Unreachable in practice: `spawn` already published once, which
        // proves the backend supports snapshots. Keep the old snapshot
        // rather than panicking the writer.
        Err(_) => return,
    };
    let epoch = snapshot.epoch();
    let mut state = lock_unpoisoned(&shared.state);
    state.snapshot = snapshot;
    state.stats.publishes += 1;
    if let Some(s) = map.snapshot_stats() {
        state.stats.snapshot = s;
    }
    state.ring.push_back((epoch, changed));
    while state.ring.len() > CHANGE_RING_EPOCHS {
        if let Some((evicted, _)) = state.ring.pop_front() {
            state.dropped_through = Some(evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Backend;
    use omu_geometry::PointCloud;

    fn scan(step: u64) -> Scan {
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            (0..32)
                .map(|i| {
                    let a = (step * 32 + i) as f64 * 0.111;
                    Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
                })
                .collect::<PointCloud>(),
        )
    }

    #[test]
    fn service_snapshot_matches_serial_map() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let mut serial = MapBuilder::new(0.1).build().unwrap();
        for step in 0..4 {
            service.ingest(scan(step)).unwrap();
            serial.insert(&scan(step)).unwrap();
        }
        let snap = service.flush().unwrap();
        assert_eq!(snap.canonical_leaves(), serial.snapshot());
        assert_eq!(
            snap.occupancy_at(Point3::new(2.0, 0.0, 0.2)).unwrap(),
            Occupancy::Occupied
        );
        let stats = service.service_stats();
        assert_eq!(stats.scans_ingested, 4);
        assert!(stats.publishes >= 2, "initial publish plus batches");
        service.shutdown().unwrap();
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let early = service.flush().unwrap();
        let early_leaves = early.canonical_leaves();
        for step in 1..4 {
            service.ingest(scan(step)).unwrap();
        }
        let late = service.flush().unwrap();
        assert!(late.epoch() > early.epoch());
        assert_ne!(late.canonical_leaves(), early_leaves);
        assert_eq!(early.canonical_leaves(), early_leaves, "pinned epoch");
        service.shutdown().unwrap();
    }

    #[test]
    fn fixed_backend_serves_identically_to_direct_map() {
        let service =
            MapService::spawn(MapBuilder::new(0.1).backend(Backend::SoftwareFixed)).unwrap();
        let mut serial = MapBuilder::new(0.1)
            .backend(Backend::SoftwareFixed)
            .build()
            .unwrap();
        service.ingest(scan(0)).unwrap();
        serial.insert(&scan(0)).unwrap();
        let snap = service.flush().unwrap();
        assert!(matches!(snap, MapSnapshot::SoftwareFixed(_)));
        assert_eq!(snap.canonical_leaves(), serial.snapshot());
        service.shutdown().unwrap();
    }

    #[test]
    fn subscription_drains_changes_and_reports_lag() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let mut sub = service.subscribe();
        service.ingest(scan(0)).unwrap();
        let snap = service.flush().unwrap();
        let changed = sub.poll().unwrap();
        assert!(!changed.is_empty());
        for &key in &changed {
            assert_ne!(snap.occupancy(key), Occupancy::Unknown);
        }
        assert!(sub.poll().unwrap().is_empty(), "drained");

        // Starve a second subscriber past the ring capacity: each flush
        // with work publishes exactly one epoch.
        let mut slow = service.subscribe();
        for _ in 0..(CHANGE_RING_EPOCHS + 3) {
            service.ingest(scan(1)).unwrap();
            service.flush().unwrap();
        }
        match slow.poll() {
            Err(MapError::Lagged { missed }) => assert!(missed >= 1),
            other => panic!("expected Lagged, got {other:?}"),
        }
        // Recovered: the next poll resumes from the retained window.
        slow.poll().unwrap();
        service.shutdown().unwrap();
    }

    #[test]
    fn shutdown_is_typed_and_snapshots_survive_it() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let snap = service.flush().unwrap();
        let mut sub = service.subscribe();
        service.shutdown().unwrap();
        assert_eq!(
            snap.occupancy_at(Point3::new(2.0, 0.0, 0.2)).unwrap(),
            Occupancy::Occupied
        );
        assert!(matches!(sub.poll(), Err(MapError::ServiceShutdown)));
    }

    #[test]
    fn ingest_after_writer_death_is_shutdown_error() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        // Simulate the handle outliving the writer by asking it to stop.
        service.sender.send(Command::Shutdown).unwrap();
        while !service.is_shut_down() {
            std::thread::yield_now();
        }
        // The channel stays open while the handle lives, so a late ingest
        // is detected at flush time: the queue is never drained again.
        let snap = service.snapshot();
        assert!(snap.is_empty());
    }

    #[test]
    fn bad_scan_surfaces_at_flush_and_map_stays_usable() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        let far = *service.snapshot().converter();
        let bad_origin = Point3::new(far.map_half_extent() + 5.0, 0.0, 0.0);
        service
            .ingest(Scan::new(bad_origin, PointCloud::new()))
            .unwrap();
        service.ingest(scan(0)).unwrap();
        match service.flush() {
            Err(MapError::OutOfBounds(_)) => {}
            other => panic!("expected deferred OutOfBounds, got {other:?}"),
        }
        // The good scan was still applied and the error drained.
        let snap = service.flush().unwrap();
        assert!(!snap.is_empty());
        assert_eq!(service.service_stats().ingest_errors, 1);
        service.shutdown().unwrap();
    }

    #[test]
    fn concurrent_readers_on_the_reader_pool_see_published_epochs() {
        let service = MapService::spawn(MapBuilder::new(0.1)).unwrap();
        service.ingest(scan(0)).unwrap();
        let reference = service.flush().unwrap().canonical_leaves();
        let pool = Arc::clone(service.reader_pool());
        let results: Mutex<Vec<Vec<(VoxelKey, u8, f32)>>> = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..8 {
                let snap = service.snapshot();
                let results = &results;
                s.spawn(move || {
                    let leaves = snap.canonical_leaves();
                    results.lock().unwrap().push(leaves);
                });
            }
            // Keep writing while the readers run.
            for step in 1..4 {
                service.ingest(scan(step)).unwrap();
            }
        });
        for leaves in results.into_inner().unwrap() {
            assert_eq!(leaves, reference);
        }
        service.flush().unwrap();
        service.shutdown().unwrap();
    }
}
