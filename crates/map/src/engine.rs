//! The update-engine selector: which insertion path a map drives, as a
//! value rather than a method name.

use std::fmt;
use std::str::FromStr;

use omu_core::UpdateEngine;

/// Maximum worker-shard count of the subtree-sharded engines (one shard
/// per first-level octree branch, like the paper's 8 PEs).
pub const MAX_SHARDS: usize = 8;

/// Which update engine an [`OccupancyMap`](crate::OccupancyMap) drives.
///
/// All engines produce bit-identical maps; they differ in how tree
/// maintenance is scheduled (and therefore in throughput). The engine is
/// resolved once by the [`MapBuilder`](crate::MapBuilder), so callers
/// never pick between `insert_scan` / `insert_scan_batched` /
/// `insert_scan_parallel` method names again.
///
/// # Examples
///
/// ```
/// use omu_map::Engine;
///
/// let e: Engine = "sharded:4".parse()?;
/// assert_eq!(e, Engine::Sharded { shards: 4 });
/// assert_eq!(Engine::default(), Engine::Batched);
/// # Ok::<(), omu_map::ParseEngineError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One full descent + parent-refresh pass per voxel update (OctoMap's
    /// `updateNode` loop; the paper's CPU-baseline shape).
    Scalar,
    /// Per-scan Morton-sorted batches with cached descent and deferred
    /// parent refresh (the default).
    #[default]
    Batched,
    /// The subtree-sharded parallel pipeline with one worker per
    /// available CPU.
    Parallel,
    /// The subtree-sharded parallel pipeline with an explicit worker
    /// count (1 ..= [`MAX_SHARDS`]).
    Sharded {
        /// Worker shards for ray casting and the parallel tree apply.
        shards: usize,
    },
}

impl Engine {
    /// Every engine family, with [`Engine::Sharded`] at the paper's 8-PE
    /// design point — handy for sweeps and equivalence tests.
    pub const ALL: [Engine; 4] = [
        Engine::Scalar,
        Engine::Batched,
        Engine::Parallel,
        Engine::Sharded { shards: 8 },
    ];

    /// The flag spelling of this engine's family (`--engine` value;
    /// [`Engine::Sharded`] renders its shard count via [`fmt::Display`]).
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Scalar => "scalar",
            Engine::Batched => "batched",
            Engine::Parallel => "parallel",
            Engine::Sharded { .. } => "sharded",
        }
    }

    /// The accelerator front end this engine maps onto: both parallel
    /// variants drive the PE-grouped sharded front end (the shard count
    /// is a software-side knob; the PE count is hardware configuration).
    pub fn update_engine(&self) -> UpdateEngine {
        match self {
            Engine::Scalar => UpdateEngine::Scalar,
            Engine::Batched => UpdateEngine::MortonBatched,
            Engine::Parallel | Engine::Sharded { .. } => UpdateEngine::ShardedParallel,
        }
    }

    /// The worker-shard count the software tree paths use: `None` for the
    /// sequential engines, `Some(0)` ("one per CPU") for
    /// [`Engine::Parallel`], the explicit count for [`Engine::Sharded`].
    pub fn shards(&self) -> Option<usize> {
        match self {
            Engine::Scalar | Engine::Batched => None,
            Engine::Parallel => Some(0),
            Engine::Sharded { shards } => Some(*shards),
        }
    }

    /// Validates the engine's parameters (shard count in
    /// 1 ..= [`MAX_SHARDS`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::MapError::InvalidShards`] for an out-of-range
    /// shard count.
    pub fn validate(&self) -> Result<(), crate::MapError> {
        if let Engine::Sharded { shards } = self {
            if !(1..=MAX_SHARDS).contains(shards) {
                return Err(crate::MapError::InvalidShards(*shards));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Sharded { shards } => write!(f, "sharded:{shards}"),
            other => f.write_str(other.name()),
        }
    }
}

/// An unrecognized `--engine` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEngineError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for ParseEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown engine {:?} (expected scalar, batched, parallel, sharded or sharded:N \
             with N in 1..={MAX_SHARDS})",
            self.input
        )
    }
}

impl std::error::Error for ParseEngineError {}

impl FromStr for Engine {
    type Err = ParseEngineError;

    /// Parses the shared `--engine` flag: `scalar`, `batched`,
    /// `parallel`, `sharded` (8 shards, the paper's PE count) or
    /// `sharded:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let reject = || ParseEngineError {
            input: s.to_owned(),
        };
        match s {
            "scalar" => Ok(Engine::Scalar),
            "batched" => Ok(Engine::Batched),
            "parallel" => Ok(Engine::Parallel),
            "sharded" => Ok(Engine::Sharded { shards: MAX_SHARDS }),
            other => {
                let shards = other
                    .strip_prefix("sharded:")
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|n| (1..=MAX_SHARDS).contains(n))
                    .ok_or_else(reject)?;
                Ok(Engine::Sharded { shards })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_display() {
        for e in [
            Engine::Scalar,
            Engine::Batched,
            Engine::Parallel,
            Engine::Sharded { shards: 3 },
        ] {
            assert_eq!(e.to_string().parse::<Engine>(), Ok(e));
        }
    }

    #[test]
    fn bare_sharded_defaults_to_eight() {
        assert_eq!("sharded".parse(), Ok(Engine::Sharded { shards: 8 }));
    }

    #[test]
    fn bad_inputs_rejected() {
        for bad in ["", "warp-drive", "sharded:0", "sharded:9", "sharded:x"] {
            let e = bad.parse::<Engine>().unwrap_err();
            assert_eq!(e.input, bad);
            assert!(e.to_string().contains("unknown engine"));
        }
    }

    #[test]
    fn update_engine_mapping() {
        assert_eq!(Engine::Scalar.update_engine(), UpdateEngine::Scalar);
        assert_eq!(Engine::Batched.update_engine(), UpdateEngine::MortonBatched);
        assert_eq!(
            Engine::Parallel.update_engine(),
            UpdateEngine::ShardedParallel
        );
        assert_eq!(
            Engine::Sharded { shards: 2 }.update_engine(),
            UpdateEngine::ShardedParallel
        );
    }

    #[test]
    fn shard_validation() {
        assert!(Engine::Sharded { shards: 0 }.validate().is_err());
        assert!(Engine::Sharded { shards: 9 }.validate().is_err());
        for e in Engine::ALL {
            assert!(e.validate().is_ok());
        }
    }
}
