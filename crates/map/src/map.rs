//! The unified map type and its query view.

use std::path::Path;

use omu_core::OmuAccelerator;
use omu_geometry::{KeyConverter, Occupancy, Point3, Scan, VoxelKey};
use omu_octree::{LeafInfo, OctreeF32, OctreeFixed, OpCounters, QueryCounters, RayCastResult};
use omu_raycast::IntegrationStats;

use crate::backend::MapBackend;
use crate::builder::MapBuilder;
use crate::engine::Engine;
use crate::error::MapError;
use crate::service::MapSnapshot;

/// The concrete backend storage (boxed: an accelerator owns megabytes of
/// modeled SRAM, a tree owns its arena — the facade stays one word plus
/// an engine tag regardless).
#[derive(Debug, Clone)]
pub(crate) enum Inner {
    Software(Box<OctreeF32>),
    SoftwareFixed(Box<OctreeFixed>),
    Accelerator(Box<OmuAccelerator>),
}

/// A probabilistic 3D occupancy map with one API over every engine and
/// backend: the software octree (float or fixed point) and the OMU
/// accelerator model, fed by the scalar, batched or sharded-parallel
/// update pipelines.
///
/// Construct through [`MapBuilder`]; all knobs are resolved up front.
/// Ingestion goes through [`Self::insert`] / [`Self::insert_points`],
/// queries through [`Self::query`] (or the direct convenience methods),
/// persistence through [`Self::save_to_file`] /
/// [`Self::load_from_file`].
///
/// # Examples
///
/// ```
/// use omu_map::{Backend, Engine, MapBuilder};
/// use omu_core::OmuConfig;
/// use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
///
/// # fn main() -> Result<(), omu_map::MapError> {
/// let mut map = MapBuilder::new(0.1)
///     .engine(Engine::Batched)
///     .backend(Backend::Accelerator(OmuConfig::default()))
///     .build()?;
/// let scan = Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
/// );
/// map.insert(&scan)?;
/// assert_eq!(
///     map.occupancy_at(Point3::new(1.0, 0.0, 0.25))?,
///     Occupancy::Occupied
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OccupancyMap {
    inner: Inner,
    engine: Engine,
}

impl OccupancyMap {
    pub(crate) fn from_parts(inner: Inner, engine: Engine) -> Self {
        OccupancyMap { inner, engine }
    }

    /// Starts a [`MapBuilder`] for a map with voxels `resolution` metres
    /// across.
    pub fn builder(resolution: f64) -> MapBuilder {
        MapBuilder::new(resolution)
    }

    fn backend(&self) -> &dyn MapBackend {
        match &self.inner {
            Inner::Software(t) => t.as_ref(),
            Inner::SoftwareFixed(t) => t.as_ref(),
            Inner::Accelerator(a) => a.as_ref(),
        }
    }

    fn backend_mut(&mut self) -> &mut dyn MapBackend {
        match &mut self.inner {
            Inner::Software(t) => t.as_mut(),
            Inner::SoftwareFixed(t) => t.as_mut(),
            Inner::Accelerator(a) => a.as_mut(),
        }
    }

    /// The configured update engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Switches the update engine for subsequent insertions. Engines are
    /// interchangeable at any point: every engine produces bit-identical
    /// maps.
    ///
    /// # Errors
    ///
    /// [`MapError::InvalidShards`] for an out-of-range shard count.
    pub fn set_engine(&mut self, engine: Engine) -> Result<(), MapError> {
        engine.validate()?;
        self.engine = engine;
        Ok(())
    }

    /// The backend's name (`"software"` / `"accelerator"`).
    pub fn backend_name(&self) -> &'static str {
        self.backend().backend_name()
    }

    /// The ray-casting DDA front end scans are integrated with
    /// (default: [`omu_raycast::FrontEnd::Packet`]).
    pub fn front_end(&self) -> omu_raycast::FrontEnd {
        self.backend().front_end()
    }

    /// The map resolution in metres.
    pub fn resolution(&self) -> f64 {
        self.converter().resolution()
    }

    /// The key/coordinate converter.
    pub fn converter(&self) -> &KeyConverter {
        self.backend().converter()
    }

    /// Integrates a full scan through the configured engine: every ray
    /// marks the cells it traverses free and its endpoint occupied.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the scan origin is outside the
    /// addressable map (out-of-map endpoints are skipped and counted in
    /// the returned statistics); [`MapError::Capacity`] when the
    /// accelerator backend exhausts its T-Mem.
    pub fn insert(&mut self, scan: &Scan) -> Result<IntegrationStats, MapError> {
        let engine = self.engine;
        self.backend_mut().insert_scan(scan, engine)
    }

    /// Borrow-based ingestion: integrates one scan straight from its
    /// origin and point slice — under the parallel engines this reuses
    /// the software backend's persistent `ScanPipeline`, so steady-state
    /// calls allocate nothing and copy no point cloud.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::insert`].
    pub fn insert_points(
        &mut self,
        origin: Point3,
        points: &[Point3],
    ) -> Result<IntegrationStats, MapError> {
        let engine = self.engine;
        self.backend_mut().insert_points(origin, points, engine)
    }

    /// The worker count the read path shares with the write engine:
    /// `&self` queries are embarrassingly parallel, so the parallel and
    /// sharded engines fan read batches across the same number of
    /// threads they use for updates (the sequential engines stay
    /// single-threaded).
    fn read_shards(&self) -> usize {
        self.engine.shards().unwrap_or(1)
    }

    /// Borrows the map as a [`QueryView`] — the query surface shared by
    /// both backends.
    pub fn query(&mut self) -> QueryView<'_> {
        let shards = self.read_shards();
        QueryView {
            backend: self.backend_mut(),
            shards,
        }
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        self.query().occupancy(key)
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the point is outside the
    /// addressable map.
    pub fn occupancy_at(&mut self, point: Point3) -> Result<Occupancy, MapError> {
        self.query().occupancy_at(point)
    }

    /// The stored log-odds covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        self.backend().peek_logodds(key)
    }

    /// Casts a query ray (see [`QueryView::cast_ray`]).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the origin is outside the map or
    /// the direction is degenerate.
    pub fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        self.query()
            .cast_ray(origin, direction, max_range, ignore_unknown)
    }

    /// Casts a batch of query rays (see [`QueryView::cast_rays`]).
    ///
    /// # Errors
    ///
    /// The first [`MapError::OutOfBounds`] in input order.
    pub fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<Vec<RayCastResult>, MapError> {
        self.query().cast_rays(rays, max_range, ignore_unknown)
    }

    /// Classifies a batch of points (see [`QueryView::occupancy_batch`]).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when any point is outside the map.
    pub fn occupancy_batch(&mut self, points: &[Point3]) -> Result<Vec<Occupancy>, MapError> {
        self.query().occupancy_batch(points)
    }

    /// Sphere collision probe (see [`QueryView::collides_sphere`]).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the probe region leaves the map.
    pub fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, MapError> {
        self.query().collides_sphere(center, radius)
    }

    /// The leaves intersecting the key box `[min, max]` (see
    /// [`QueryView::leaves_in_box`]).
    pub fn leaves_in_box(&mut self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        self.query().leaves_in_box(min, max)
    }

    /// The leaves intersecting the metric box `[min, max]` (see
    /// [`QueryView::leaves_in_region`]).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when a corner leaves the map.
    pub fn leaves_in_region(
        &mut self,
        min: Point3,
        max: Point3,
    ) -> Result<Vec<LeafInfo>, MapError> {
        self.query().leaves_in_region(min, max)
    }

    /// The canonical sorted map snapshot `(key, depth, logodds)` — the
    /// comparison format of the equivalence suite, identical across
    /// engines and (on fixed point) across backends.
    pub fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)> {
        self.backend().snapshot()
    }

    /// Publishes an immutable, epoch-pinned [`MapSnapshot`] of the
    /// current map: a cheaply clonable read handle that any number of
    /// threads can query lock-free while this map keeps ingesting (the
    /// write path copies rows on first write instead of blocking — see
    /// the octree crate's snapshot docs). This is the primitive under
    /// [`MapService`](crate::MapService); use the service when you also
    /// want the writer moved off-thread.
    ///
    /// # Errors
    ///
    /// [`MapError::Unsupported`] on the accelerator backend (serve from
    /// a software-backed map mirroring the same scans).
    pub fn publish_snapshot(&mut self) -> Result<MapSnapshot, MapError> {
        match &mut self.inner {
            Inner::Software(t) => Ok(MapSnapshot::Software(t.publish_snapshot())),
            Inner::SoftwareFixed(t) => Ok(MapSnapshot::SoftwareFixed(t.publish_snapshot())),
            Inner::Accelerator(_) => Err(MapError::Unsupported {
                backend: "accelerator",
                feature: "epoch snapshots (serve from a software-backed map)",
            }),
        }
    }

    /// Snapshot/copy-on-write bookkeeping of the software backends —
    /// write epoch, publishes, live pins, rows copied / retired /
    /// reclaimed. `None` on the accelerator backend.
    pub fn snapshot_stats(&self) -> Option<omu_octree::SnapshotStats> {
        match &self.inner {
            Inner::Software(t) => Some(t.snapshot_stats()),
            Inner::SoftwareFixed(t) => Some(t.snapshot_stats()),
            Inner::Accelerator(_) => None,
        }
    }

    /// Tree-operation counters (`None` on the accelerator backend, whose
    /// accounting lives in `AccelStats` — see [`Self::accelerator`]).
    pub fn counters(&self) -> Option<OpCounters> {
        self.backend().op_counters()
    }

    /// Removes and returns the read-side counters accumulated by the
    /// cached-descent and batched query paths — probes, node visits,
    /// prefix-reuse hits — so benches and tests can assert reuse rates
    /// per measurement window. `None` on the accelerator backend, whose
    /// query accounting lives in
    /// [`QueryUnitStats`](omu_core::QueryUnitStats) (see
    /// [`Self::accelerator`]).
    pub fn query_counters(&mut self) -> Option<QueryCounters> {
        self.backend_mut().take_query_counters()
    }

    /// Cumulative statistics of the persistent worker pool behind the
    /// software backends' parallel paths, if one has been created (the
    /// pool is lazy: it first exists after a parallel insert or batch
    /// read, or up front via
    /// [`MapBuilder::worker_threads`](crate::MapBuilder::worker_threads)).
    /// `threads_spawned` staying flat across calls is the observable
    /// "zero per-call thread spawns" guarantee; `None` on the
    /// accelerator backend.
    pub fn pool_stats(&self) -> Option<omu_octree::PoolStats> {
        match &self.inner {
            Inner::Software(t) => t.pool_stats(),
            Inner::SoftwareFixed(t) => t.pool_stats(),
            Inner::Accelerator(_) => None,
        }
    }

    /// Test hook: makes the next sharded apply panic inside the worker
    /// that owns `branch`, to exercise the typed
    /// [`MapError::WorkerPanicked`] path. No-op on the accelerator.
    #[doc(hidden)]
    pub fn debug_inject_worker_panic(&mut self, branch: Option<usize>) {
        match &mut self.inner {
            Inner::Software(t) => t.debug_inject_worker_panic(branch),
            Inner::SoftwareFixed(t) => t.debug_inject_worker_panic(branch),
            Inner::Accelerator(_) => {}
        }
    }

    /// Number of leaves (finest voxels and pruned regions).
    pub fn num_leaves(&self) -> usize {
        self.backend().num_leaves()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.backend().is_empty()
    }

    /// Removes and returns the sorted keys whose occupancy
    /// classification changed since the last drain — the incremental
    /// feed for planners and renderers. Requires
    /// [`MapBuilder::change_detection`]; empty on the accelerator
    /// backend (which cannot track changes).
    pub fn drain_changed_keys(&mut self) -> Vec<VoxelKey> {
        self.backend_mut().drain_changed()
    }

    /// Serializes the map to the compact octree byte format.
    ///
    /// # Errors
    ///
    /// [`MapError::Unsupported`] on the accelerator backend (mirror the
    /// scans into a [`Backend::SoftwareFixed`](crate::Backend) map to
    /// persist accelerator-equivalent state).
    pub fn to_bytes(&self) -> Result<Vec<u8>, MapError> {
        self.backend().save_bytes()
    }

    /// Saves the map to a file, creating or truncating it.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] on filesystem failure; [`MapError::Unsupported`]
    /// on the accelerator backend.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> Result<(), MapError> {
        match &self.inner {
            Inner::Software(t) => Ok(t.save_to_file(path)?),
            Inner::SoftwareFixed(t) => Ok(t.save_to_file(path)?),
            Inner::Accelerator(_) => Err(MapError::Unsupported {
                backend: "accelerator",
                feature: "map serialization (mirror the map on a software backend to persist it)",
            }),
        }
    }

    /// Restores a software-backed (`f32`) map from bytes produced by
    /// [`Self::to_bytes`]. Resolution and sensor model come from the
    /// encoding; the engine defaults to [`Engine::Batched`]
    /// ([`Self::set_engine`] to change it).
    ///
    /// # Errors
    ///
    /// [`MapError::Decode`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, MapError> {
        Ok(OccupancyMap::from_parts(
            Inner::Software(Box::new(OctreeF32::from_bytes(bytes)?)),
            Engine::default(),
        ))
    }

    /// [`Self::from_bytes`] onto the fixed-point software backend (the
    /// representation that matches the accelerator bit-for-bit).
    ///
    /// # Errors
    ///
    /// [`MapError::Decode`] for malformed input.
    pub fn from_bytes_fixed(bytes: &[u8]) -> Result<Self, MapError> {
        Ok(OccupancyMap::from_parts(
            Inner::SoftwareFixed(Box::new(OctreeFixed::from_bytes(bytes)?)),
            Engine::default(),
        ))
    }

    /// Loads a software-backed (`f32`) map from a file produced by
    /// [`Self::save_to_file`].
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] / [`MapError::Decode`] on failure.
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, MapError> {
        Ok(OccupancyMap::from_parts(
            Inner::Software(Box::new(OctreeF32::load_from_file(path)?)),
            Engine::default(),
        ))
    }

    /// [`Self::load_from_file`] onto the fixed-point software backend.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] / [`MapError::Decode`] on failure.
    pub fn load_from_file_fixed<P: AsRef<Path>>(path: P) -> Result<Self, MapError> {
        Ok(OccupancyMap::from_parts(
            Inner::SoftwareFixed(Box::new(OctreeFixed::load_from_file(path)?)),
            Engine::default(),
        ))
    }

    /// The underlying `f32` software tree, when that is the backend —
    /// the escape hatch to the low-level layer (memory statistics, leaf
    /// iteration, raw batch application).
    pub fn tree(&self) -> Option<&OctreeF32> {
        match &self.inner {
            Inner::Software(t) => Some(t),
            _ => None,
        }
    }

    /// The underlying fixed-point software tree, when that is the
    /// backend.
    pub fn tree_fixed(&self) -> Option<&OctreeFixed> {
        match &self.inner {
            Inner::SoftwareFixed(t) => Some(t),
            _ => None,
        }
    }

    /// The underlying accelerator model, when that is the backend —
    /// cycle/energy/power reporting lives there.
    pub fn accelerator(&self) -> Option<&OmuAccelerator> {
        match &self.inner {
            Inner::Accelerator(a) => Some(a),
            _ => None,
        }
    }
}

/// The unified query surface over a borrowed map backend: point and key
/// occupancy, query-ray casting, sphere collision probes and region
/// iteration, identical semantics on both backends.
///
/// Obtained from [`OccupancyMap::query`]. Queries take `&mut self`
/// because the accelerator backend accounts voxel-query-unit cycles.
///
/// # Examples
///
/// ```
/// use omu_map::MapBuilder;
/// use omu_geometry::{Point3, PointCloud, Scan};
/// use omu_octree::RayCastResult;
///
/// # fn main() -> Result<(), omu_map::MapError> {
/// let mut map = MapBuilder::new(0.1).build()?;
/// map.insert(&Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
/// ))?;
/// let mut q = map.query();
/// let hit = q.cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 5.0, true)?;
/// assert!(matches!(hit, RayCastResult::Hit { .. }));
/// assert!(!q.collides_sphere(Point3::new(0.3, 0.0, 0.0), 0.1)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QueryView<'a> {
    backend: &'a mut dyn MapBackend,
    /// Worker threads for batched reads, inherited from the map's
    /// engine (`0` = one per CPU).
    shards: usize,
}

impl QueryView<'_> {
    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        self.backend.occupancy(key)
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the point is outside the
    /// addressable map.
    pub fn occupancy_at(&mut self, point: Point3) -> Result<Occupancy, MapError> {
        let key = self.backend.converter().coord_to_key(point)?;
        Ok(self.backend.occupancy(key))
    }

    /// The stored log-odds covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        self.backend.peek_logodds(key)
    }

    /// Classifies a batch of points, returning occupancies in input
    /// order through the backend's batched query engine — the software
    /// tree Morton-sorts the batch for one cached-descent sweep (chunked
    /// across the engine's worker threads under the parallel engines);
    /// the accelerator serves it through the voxel query unit's register
    /// file. Bit-identical to calling [`Self::occupancy_at`] per point.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when any point is outside the
    /// addressable map (detected before any classification runs).
    pub fn occupancy_batch(&mut self, points: &[Point3]) -> Result<Vec<Occupancy>, MapError> {
        let conv = *self.backend.converter();
        let keys = points
            .iter()
            .map(|&p| conv.coord_to_key(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self.backend.occupancy_batch(&keys, self.shards))
    }

    /// [`Self::occupancy_batch`] by voxel key (keys are always
    /// addressable, so this form is infallible).
    pub fn occupancy_batch_keys(&mut self, keys: &[VoxelKey]) -> Vec<Occupancy> {
        self.backend.occupancy_batch(keys, self.shards)
    }

    /// Casts a query ray from `origin` along `direction`, returning the
    /// first occupied voxel within `max_range` metres. With
    /// `ignore_unknown = true`, unobserved voxels are treated as free
    /// (OctoMap `castRay` semantics); otherwise the cast stops at the
    /// first unknown voxel.
    ///
    /// Rides the backend's cached-descent path: consecutive DDA steps
    /// re-descend only below the deepest common ancestor of adjacent
    /// voxels, with results bit-identical to probing every step
    /// individually.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the origin is outside the map or
    /// the direction is degenerate.
    pub fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        self.backend
            .cast_ray(origin, direction, max_range, ignore_unknown)
    }

    /// Casts a batch of query rays (`(origin, direction)` pairs), each
    /// through a cached-descent cursor, returning results in input
    /// order. Under the parallel engines the software backend chunks the
    /// batch across its worker threads (`&self` queries are
    /// embarrassingly parallel); results are bit-identical to casting
    /// each ray through [`Self::cast_ray`].
    ///
    /// # Errors
    ///
    /// The first [`MapError::OutOfBounds`] (in input order) for a bad
    /// origin or degenerate direction.
    pub fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<Vec<RayCastResult>, MapError> {
        self.backend
            .cast_rays(rays, max_range, ignore_unknown, self.shards)
    }

    /// Collision probe: does a sphere of radius `radius` at `center`
    /// intersect any occupied voxel? Conservatively samples the voxel
    /// grid inside the sphere's bounding cube (the motion-planning query
    /// of the paper's Fig. 1); the grid sweep rides the cached-descent
    /// path, since adjacent voxels share long root-path prefixes.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the probe region leaves the
    /// addressable map.
    pub fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, MapError> {
        self.backend.collides_sphere(center, radius)
    }

    /// The leaves (finest voxels and pruned regions) whose extents
    /// intersect the key box `[min, max]`, inclusive per axis.
    pub fn leaves_in_box(&mut self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        self.backend.leaves_in_box(min, max)
    }

    /// The leaves whose extents intersect the metric box spanned by
    /// `min` and `max` (in metres).
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when a corner leaves the addressable
    /// map.
    pub fn leaves_in_region(
        &mut self,
        min: Point3,
        max: Point3,
    ) -> Result<Vec<LeafInfo>, MapError> {
        let conv = *self.backend.converter();
        let lo = conv.coord_to_key(min)?;
        let hi = conv.coord_to_key(max)?;
        Ok(self.backend.leaves_in_box(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Backend;
    use omu_core::OmuConfig;
    use omu_geometry::PointCloud;

    fn ring_scan() -> Scan {
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            (0..48)
                .map(|i| {
                    let a = i as f64 * 0.131;
                    Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
                })
                .collect::<PointCloud>(),
        )
    }

    fn backends() -> Vec<OccupancyMap> {
        vec![
            MapBuilder::new(0.1).build().unwrap(),
            MapBuilder::new(0.1)
                .backend(Backend::SoftwareFixed)
                .build()
                .unwrap(),
            MapBuilder::new(0.1)
                .backend(Backend::Accelerator(OmuConfig::default()))
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn insert_and_query_agree_across_backends() {
        let scan = ring_scan();
        for mut map in backends() {
            let stats = map.insert(&scan).unwrap();
            assert_eq!(stats.rays, 48, "{}", map.backend_name());
            assert_eq!(
                map.occupancy_at(Point3::new(2.0, 0.0, 0.2)).unwrap(),
                Occupancy::Occupied,
                "{}",
                map.backend_name()
            );
            assert_eq!(
                map.occupancy_at(Point3::new(1.0, 0.0, 0.1)).unwrap(),
                Occupancy::Free
            );
            assert_eq!(
                map.occupancy_at(Point3::new(3.5, 0.0, 0.2)).unwrap(),
                Occupancy::Unknown
            );
            assert!(!map.is_empty());
            assert!(map.num_leaves() > 0);
        }
    }

    #[test]
    fn insert_points_matches_insert() {
        let scan = ring_scan();
        for (mut by_scan, mut by_points) in backends().into_iter().zip(backends()) {
            let a = by_scan.insert(&scan).unwrap();
            let b = by_points
                .insert_points(scan.origin, scan.cloud.points())
                .unwrap();
            assert_eq!(a, b, "{}", by_scan.backend_name());
            assert_eq!(by_scan.snapshot(), by_points.snapshot());
        }
    }

    #[test]
    fn out_of_bounds_is_typed_on_every_backend() {
        for mut map in backends() {
            let far = map.converter().map_half_extent() + 5.0;
            let p = Point3::new(far, 0.0, 0.0);
            assert!(
                matches!(map.occupancy_at(p), Err(MapError::OutOfBounds(_))),
                "{}",
                map.backend_name()
            );
            assert!(matches!(
                map.insert(&Scan::new(p, PointCloud::new())),
                Err(MapError::OutOfBounds(_))
            ));
        }
    }

    #[test]
    fn cast_ray_and_sphere_probe_agree_across_backends() {
        let scan = ring_scan();
        let mut results = Vec::new();
        for mut map in backends() {
            map.insert(&scan).unwrap();
            // Probe inside the wall's z layer (the ring sits at z = 0.2).
            let hit = map
                .cast_ray(
                    Point3::new(0.0, 0.0, 0.25),
                    Point3::new(1.0, 0.0, 0.0),
                    5.0,
                    true,
                )
                .unwrap();
            let collide_wall = map
                .collides_sphere(Point3::new(2.0, 0.0, 0.2), 0.2)
                .unwrap();
            let collide_open = map
                .collides_sphere(Point3::new(0.5, 0.0, 0.2), 0.2)
                .unwrap();
            match hit {
                RayCastResult::Hit { point, .. } => {
                    assert!((point.x - 2.0).abs() < 0.2, "{}", map.backend_name())
                }
                other => panic!("{}: expected a hit, got {other:?}", map.backend_name()),
            }
            assert!(collide_wall);
            assert!(!collide_open);
            results.push((collide_wall, collide_open));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn batched_queries_match_per_probe_on_every_backend() {
        let scan = ring_scan();
        for mut map in backends() {
            map.insert(&scan).unwrap();
            let points: Vec<Point3> = (0..60)
                .map(|i| {
                    let a = i as f64 * 0.21;
                    Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
                })
                .collect();
            let expected: Vec<Occupancy> = points
                .iter()
                .map(|&p| map.occupancy_at(p).unwrap())
                .collect();
            assert_eq!(
                map.occupancy_batch(&points).unwrap(),
                expected,
                "{}",
                map.backend_name()
            );

            let rays: Vec<(Point3, Point3)> = (0..12)
                .map(|i| {
                    let a = i as f64 * 0.52;
                    (
                        Point3::new(0.01, 0.01, 0.2),
                        Point3::new(a.cos(), a.sin(), 0.0),
                    )
                })
                .collect();
            let one_by_one: Vec<RayCastResult> = rays
                .iter()
                .map(|&(o, d)| map.cast_ray(o, d, 5.0, true).unwrap())
                .collect();
            assert_eq!(
                map.cast_rays(&rays, 5.0, true).unwrap(),
                one_by_one,
                "{}",
                map.backend_name()
            );
        }
    }

    #[test]
    fn out_of_bounds_batch_point_is_typed() {
        let mut map = MapBuilder::new(0.1).build().unwrap();
        map.insert(&ring_scan()).unwrap();
        let far = map.converter().map_half_extent() + 5.0;
        assert!(matches!(
            map.occupancy_batch(&[Point3::ZERO, Point3::new(far, 0.0, 0.0)]),
            Err(MapError::OutOfBounds(_))
        ));
    }

    #[test]
    fn query_counters_drain_on_software_only() {
        let scan = ring_scan();

        let mut sw = MapBuilder::new(0.1).build().unwrap();
        sw.insert(&scan).unwrap();
        assert!(sw.query_counters().unwrap() == Default::default());
        sw.cast_ray(
            Point3::new(0.01, 0.01, 0.2),
            Point3::new(1.0, 0.0, 0.0),
            5.0,
            true,
        )
        .unwrap();
        sw.occupancy_batch(&[Point3::ZERO, Point3::new(0.1, 0.0, 0.0)])
            .unwrap();
        let c = sw.query_counters().unwrap();
        assert_eq!(c.rays, 1);
        assert_eq!(c.batch_queries, 2);
        assert!(c.reused_levels > 0, "DDA steps share prefixes");
        assert!(
            sw.query_counters().unwrap() == Default::default(),
            "drained"
        );

        let mut hw = MapBuilder::new(0.1)
            .backend(Backend::Accelerator(OmuConfig::default()))
            .build()
            .unwrap();
        hw.insert(&scan).unwrap();
        hw.occupancy_batch(&[Point3::ZERO]).unwrap();
        assert!(hw.query_counters().is_none());
        // The accelerator's read accounting lives in the query unit.
        let q = hw.accelerator().unwrap().query_unit_stats();
        assert_eq!(q.batch_queries, 1);
    }

    #[test]
    fn change_drain_reports_flips_once() {
        let mut map = MapBuilder::new(0.1).change_detection(true).build().unwrap();
        map.insert(&ring_scan()).unwrap();
        let first = map.drain_changed_keys();
        assert!(!first.is_empty());
        assert!(first.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert!(map.drain_changed_keys().is_empty(), "drained");
    }

    #[test]
    fn persistence_roundtrips_software_backends() {
        let scan = ring_scan();
        let mut map = MapBuilder::new(0.1).build().unwrap();
        map.insert(&scan).unwrap();
        let restored = OccupancyMap::from_bytes(&map.to_bytes().unwrap()).unwrap();
        assert_eq!(restored.snapshot(), map.snapshot());
        assert_eq!(restored.resolution(), map.resolution());

        let mut fixed = MapBuilder::new(0.1)
            .backend(Backend::SoftwareFixed)
            .build()
            .unwrap();
        fixed.insert(&scan).unwrap();
        let restored = OccupancyMap::from_bytes_fixed(&fixed.to_bytes().unwrap()).unwrap();
        assert_eq!(restored.snapshot(), fixed.snapshot());
    }

    #[test]
    fn accelerator_persistence_is_unsupported() {
        let map = MapBuilder::new(0.1)
            .backend(Backend::Accelerator(OmuConfig::default()))
            .build()
            .unwrap();
        assert!(matches!(map.to_bytes(), Err(MapError::Unsupported { .. })));
        assert!(matches!(
            map.save_to_file("/tmp/should_not_exist.omut"),
            Err(MapError::Unsupported { .. })
        ));
    }

    #[test]
    fn region_iteration_sees_the_wall_on_both_backends() {
        let scan = ring_scan();
        for mut map in backends() {
            map.insert(&scan).unwrap();
            let leaves = map
                .leaves_in_region(Point3::new(1.5, -0.5, 0.0), Point3::new(2.5, 0.5, 0.4))
                .unwrap();
            assert!(
                leaves.iter().any(|l| l.occupancy == Occupancy::Occupied),
                "{}: wall leaves visible in region",
                map.backend_name()
            );
        }
    }
}
