//! The facade's single error type.

use std::error::Error;
use std::fmt;
use std::io;

use omu_core::{AccelError, CapacityError, ConfigError};
use omu_geometry::{KeyError, ResolutionError};
use omu_octree::{DeserializeError, ParallelInsertError, ReadError, TaskPanic};

/// Any error an [`OccupancyMap`](crate::OccupancyMap) operation can
/// produce — one type across both backends, replacing the historical
/// `KeyError`-vs-`AccelError` split of the low-level layers.
///
/// Out-of-bounds coordinates are a typed variant
/// ([`MapError::OutOfBounds`]), never a panic or a silent
/// `Occupancy::Free`.
///
/// # Examples
///
/// ```
/// use omu_map::{MapBuilder, MapError};
/// use omu_geometry::Point3;
///
/// let mut map = MapBuilder::new(0.1).build()?;
/// let far = Point3::new(1e9, 0.0, 0.0);
/// assert!(matches!(map.occupancy_at(far), Err(MapError::OutOfBounds(_))));
/// # Ok::<(), MapError>(())
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum MapError {
    /// The map resolution is not positive and finite.
    Resolution(ResolutionError),
    /// The accelerator configuration is invalid.
    Config(ConfigError),
    /// A coordinate lies outside the addressable map (or is not finite).
    OutOfBounds(KeyError),
    /// The accelerator backend exhausted a PE's T-Mem.
    Capacity(CapacityError),
    /// An invalid worker-shard count for [`Engine::Sharded`](crate::Engine).
    InvalidShards(usize),
    /// The selected backend does not support the requested feature.
    Unsupported {
        /// The backend that rejected the request.
        backend: &'static str,
        /// The feature it cannot provide.
        feature: &'static str,
    },
    /// A filesystem or stream error during persistence.
    Io(io::Error),
    /// Persisted bytes did not decode to a valid map.
    Decode(DeserializeError),
    /// A worker-pool task panicked during a parallel operation. The map
    /// stays structurally valid and usable, but the failed batch may be
    /// partially applied.
    WorkerPanicked(TaskPanic),
    /// The [`MapService`](crate::MapService) writer has shut down (or its
    /// thread died); the handle can no longer ingest or serve snapshots.
    ServiceShutdown,
    /// A change subscription fell behind the service's bounded change
    /// ring: `missed` publish epochs were evicted before the subscriber
    /// polled. The subscription stays usable and resumes from the oldest
    /// retained epoch; resynchronize from a fresh
    /// [`MapService::snapshot`](crate::MapService::snapshot).
    Lagged {
        /// Publish epochs whose change sets were dropped.
        missed: u64,
    },
    /// The service's bounded ingest queue
    /// ([`MapBuilder::queue_capacity`](crate::MapBuilder::queue_capacity))
    /// is full: the writer is falling behind the producers. The scan was
    /// **not** enqueued; retry, drop the scan, or call
    /// [`MapService::flush`](crate::MapService::flush) to wait the queue
    /// down.
    Backpressure {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Resolution(e) => write!(f, "invalid resolution: {e}"),
            MapError::Config(e) => write!(f, "invalid accelerator configuration: {e}"),
            MapError::OutOfBounds(e) => write!(f, "out of bounds: {e}"),
            MapError::Capacity(e) => write!(f, "capacity exhausted: {e}"),
            MapError::InvalidShards(n) => write!(
                f,
                "invalid shard count {n} (must be 1..={})",
                crate::MAX_SHARDS
            ),
            MapError::Unsupported { backend, feature } => {
                write!(f, "the {backend} backend does not support {feature}")
            }
            MapError::Io(e) => write!(f, "i/o error: {e}"),
            MapError::Decode(e) => write!(f, "invalid map data: {e}"),
            MapError::WorkerPanicked(p) => write!(f, "parallel operation failed: {p}"),
            MapError::ServiceShutdown => write!(f, "the map service has shut down"),
            MapError::Lagged { missed } => write!(
                f,
                "change subscription lagged: {missed} publish epochs evicted before polling"
            ),
            MapError::Backpressure { capacity } => write!(
                f,
                "ingest queue full (capacity {capacity}): the writer is falling behind"
            ),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Resolution(e) => Some(e),
            MapError::Config(e) => Some(e),
            MapError::OutOfBounds(e) => Some(e),
            MapError::Capacity(e) => Some(e),
            MapError::Io(e) => Some(e),
            MapError::Decode(e) => Some(e),
            MapError::WorkerPanicked(p) => Some(p),
            MapError::InvalidShards(_)
            | MapError::Unsupported { .. }
            | MapError::ServiceShutdown
            | MapError::Lagged { .. }
            | MapError::Backpressure { .. } => None,
        }
    }
}

impl From<ResolutionError> for MapError {
    fn from(e: ResolutionError) -> Self {
        MapError::Resolution(e)
    }
}

impl From<ConfigError> for MapError {
    fn from(e: ConfigError) -> Self {
        MapError::Config(e)
    }
}

impl From<KeyError> for MapError {
    fn from(e: KeyError) -> Self {
        MapError::OutOfBounds(e)
    }
}

impl From<CapacityError> for MapError {
    fn from(e: CapacityError) -> Self {
        MapError::Capacity(e)
    }
}

impl From<io::Error> for MapError {
    fn from(e: io::Error) -> Self {
        MapError::Io(e)
    }
}

impl From<DeserializeError> for MapError {
    fn from(e: DeserializeError) -> Self {
        MapError::Decode(e)
    }
}

impl From<ReadError> for MapError {
    fn from(e: ReadError) -> Self {
        match e {
            // Fold a known path into the I/O error text so it survives
            // the conversion.
            ReadError::Io {
                path: Some(p),
                source,
            } => MapError::Io(io::Error::new(
                source.kind(),
                format!("{}: {source}", p.display()),
            )),
            ReadError::Io { path: None, source } => MapError::Io(source),
            ReadError::Decode { source, .. } => MapError::Decode(source),
        }
    }
}

impl From<TaskPanic> for MapError {
    fn from(p: TaskPanic) -> Self {
        MapError::WorkerPanicked(p)
    }
}

impl From<ParallelInsertError> for MapError {
    fn from(e: ParallelInsertError) -> Self {
        match e {
            ParallelInsertError::Key(e) => MapError::OutOfBounds(e),
            ParallelInsertError::WorkerPanic(p) => MapError::WorkerPanicked(p),
            _ => MapError::Unsupported {
                backend: "software",
                feature: "this parallel-insert failure mode",
            },
        }
    }
}

impl From<AccelError> for MapError {
    fn from(e: AccelError) -> Self {
        match e {
            AccelError::Config(e) => MapError::Config(e),
            AccelError::Key(e) => MapError::OutOfBounds(e),
            AccelError::Capacity(e) => MapError::Capacity(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_errors_normalize() {
        let e: MapError = AccelError::Key(KeyError::NotFinite { coord: f64::NAN }).into();
        assert!(matches!(e, MapError::OutOfBounds(_)));
        let e: MapError = AccelError::Capacity(CapacityError {
            pe: 1,
            rows_per_bank: 16,
        })
        .into();
        assert!(matches!(e, MapError::Capacity(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn read_errors_split() {
        let e: MapError = ReadError::Decode {
            path: None,
            source: DeserializeError::BadMagic,
        }
        .into();
        assert!(matches!(e, MapError::Decode(DeserializeError::BadMagic)));
        let e: MapError = ReadError::Io {
            path: Some("/tmp/lost.omut".into()),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        }
        .into();
        assert!(matches!(e, MapError::Io(_)));
        assert!(e.to_string().contains("/tmp/lost.omut"), "{e}");
    }

    #[test]
    fn display_is_informative() {
        assert!(MapError::InvalidShards(9).to_string().contains("1..=8"));
        let e = MapError::Unsupported {
            backend: "accelerator",
            feature: "change detection",
        };
        assert!(e.to_string().contains("accelerator"));
        assert!(e.to_string().contains("change detection"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MapError>();
    }
}
