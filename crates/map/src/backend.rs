//! The backend abstraction: one trait over the software octree and the
//! accelerator model, so engine and backend selection are values.

use omu_core::OmuAccelerator;
use omu_geometry::{
    FixedLogOdds, KeyConverter, LogOdds, Occupancy, Point3, PointCloud, Scan, VoxelKey,
};
use omu_octree::{LeafInfo, OccupancyOctree, OpCounters, QueryCounters, RayCastResult};
use omu_raycast::{FrontEnd, IntegrationStats};

use crate::engine::Engine;
use crate::error::MapError;

/// The operations an [`OccupancyMap`](crate::OccupancyMap) needs from a
/// map-holding engine, implemented by both
/// [`OccupancyOctree`](omu_octree::OccupancyOctree) (the software
/// baseline, either value representation) and
/// [`OmuAccelerator`](omu_core::OmuAccelerator) (the transaction-level
/// hardware model).
///
/// The trait is object-safe: the facade holds a `&mut dyn MapBackend`
/// while serving queries, so backend selection is a runtime value.
/// Queries take `&mut self` because the accelerator's voxel query unit
/// accounts cycles per query.
pub trait MapBackend: std::fmt::Debug {
    /// A short human-readable backend name (`"software"` /
    /// `"accelerator"`).
    fn backend_name(&self) -> &'static str;

    /// The key/coordinate converter (shared by both backends).
    fn converter(&self) -> &KeyConverter;

    /// The ray-casting DDA front end the backend integrates scans with.
    fn front_end(&self) -> FrontEnd;

    /// Integrates one scan through the path selected by `engine`.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] for an out-of-map origin;
    /// [`MapError::Capacity`] when the accelerator exhausts its T-Mem.
    fn insert_scan(&mut self, scan: &Scan, engine: Engine) -> Result<IntegrationStats, MapError>;

    /// Borrow-based ingestion: integrates one scan straight from its
    /// origin and point slice. On the software backend the parallel
    /// engines route through the persistent `ScanPipeline`, so
    /// steady-state calls copy no point cloud at all.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::insert_scan`].
    fn insert_points(
        &mut self,
        origin: Point3,
        points: &[Point3],
        engine: Engine,
    ) -> Result<IntegrationStats, MapError>;

    /// Occupancy classification of the voxel at `key` (keys are always
    /// addressable, so this is infallible on both backends).
    fn occupancy(&mut self, key: VoxelKey) -> Occupancy;

    /// Classifies a batch of voxel keys, in input order, through the
    /// backend's batched query engine: Morton-coalesced cached descent
    /// on the software tree (chunked across up to `shards` threads), the
    /// voxel query unit's register-file path on the accelerator (a single
    /// modeled device — `shards` is ignored). Bit-identical to calling
    /// [`Self::occupancy`] per key.
    fn occupancy_batch(&mut self, keys: &[VoxelKey], shards: usize) -> Vec<Occupancy>;

    /// Casts one query ray through the backend's cached-descent path.
    /// Same contract and result as the probe-per-step path the facade
    /// historically used — consecutive DDA steps just stop re-paying the
    /// full root-to-leaf descent.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] for a bad origin or degenerate
    /// direction.
    fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError>;

    /// Casts a batch of query rays, in input order; the software backend
    /// chunks the batch across up to `shards` threads, each with its own
    /// descent cursor.
    ///
    /// # Errors
    ///
    /// The first [`MapError::OutOfBounds`] in input order.
    fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
        shards: usize,
    ) -> Result<Vec<RayCastResult>, MapError>;

    /// Sphere collision probe through the backend's cached-descent path.
    ///
    /// # Errors
    ///
    /// [`MapError::OutOfBounds`] when the probe region leaves the map.
    fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, MapError>;

    /// Removes and returns the read-side counters, when the backend
    /// tracks them (`None` on the accelerator, whose query accounting
    /// lives in `QueryUnitStats`).
    fn take_query_counters(&mut self) -> Option<QueryCounters>;

    /// The stored log-odds covering `key` as `f32`, if observed. Never
    /// counted as a hardware operation (the accelerator reads its T-Mem
    /// with uncounted peeks).
    fn peek_logodds(&self, key: VoxelKey) -> Option<f32>;

    /// The canonical sorted map snapshot `(key, depth, logodds)` — the
    /// comparison format of the equivalence suite.
    fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)>;

    /// The leaves whose regions intersect the key box `[min, max]`
    /// (inclusive per axis), in deterministic order.
    fn leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo>;

    /// Tree-operation counters, when the backend tracks them (`None` on
    /// the accelerator, whose accounting lives in `AccelStats`).
    fn op_counters(&self) -> Option<OpCounters>;

    /// Enables or disables change tracking; returns `false` when the
    /// backend cannot track changes (the accelerator model).
    fn set_change_tracking(&mut self, enabled: bool) -> bool;

    /// Removes and returns the keys whose classification changed since
    /// the last drain, sorted (empty when tracking is off/unsupported).
    fn drain_changed(&mut self) -> Vec<VoxelKey>;

    /// Serializes the map to the octree byte format.
    ///
    /// # Errors
    ///
    /// [`MapError::Unsupported`] when the backend cannot export its map.
    fn save_bytes(&self) -> Result<Vec<u8>, MapError>;

    /// Number of leaves (finest voxels and pruned regions) in the map.
    fn num_leaves(&self) -> usize;

    /// True when nothing has been observed yet.
    fn is_empty(&self) -> bool;
}

impl<V: LogOdds> MapBackend for OccupancyOctree<V> {
    fn backend_name(&self) -> &'static str {
        "software"
    }

    fn converter(&self) -> &KeyConverter {
        OccupancyOctree::converter(self)
    }

    fn front_end(&self) -> FrontEnd {
        OccupancyOctree::front_end(self)
    }

    fn insert_scan(&mut self, scan: &Scan, engine: Engine) -> Result<IntegrationStats, MapError> {
        match engine.shards() {
            None => match engine {
                Engine::Scalar => Ok(self.insert_scan(scan)?),
                _ => Ok(self.insert_scan_batched(scan)?),
            },
            // The `try_` form surfaces a pool-worker panic as a typed
            // `MapError::WorkerPanicked` instead of unwinding through
            // the facade.
            Some(shards) => Ok(self.try_insert_scan_parallel(scan, shards)?),
        }
    }

    fn insert_points(
        &mut self,
        origin: Point3,
        points: &[Point3],
        engine: Engine,
    ) -> Result<IntegrationStats, MapError> {
        match engine.shards() {
            // The sequential engines consume a `Scan`; build one from the
            // borrowed slice.
            None => {
                let scan = Scan::new(origin, points.iter().copied().collect::<PointCloud>());
                MapBackend::insert_scan(self, &scan, engine)
            }
            Some(shards) => Ok(self.try_insert_points_parallel(origin, points, shards)?),
        }
    }

    fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        OccupancyOctree::occupancy(self, key)
    }

    fn occupancy_batch(&mut self, keys: &[VoxelKey], shards: usize) -> Vec<Occupancy> {
        if shards == 1 {
            self.query_batch(keys).to_vec()
        } else {
            self.query_batch_parallel(keys, shards).to_vec()
        }
    }

    fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        Ok(self.cast_ray_cached(origin, direction, max_range, ignore_unknown)?)
    }

    fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
        shards: usize,
    ) -> Result<Vec<RayCastResult>, MapError> {
        Ok(OccupancyOctree::cast_rays(
            self,
            rays,
            max_range,
            ignore_unknown,
            shards,
        )?)
    }

    fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, MapError> {
        Ok(self.collides_sphere_cached(center, radius)?)
    }

    fn take_query_counters(&mut self) -> Option<QueryCounters> {
        Some(OccupancyOctree::take_query_counters(self))
    }

    fn peek_logodds(&self, key: VoxelKey) -> Option<f32> {
        self.logodds(key)
    }

    fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)> {
        OccupancyOctree::snapshot(self)
    }

    fn leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        self.iter_leaves_in_box(min, max).collect()
    }

    fn op_counters(&self) -> Option<OpCounters> {
        Some(*self.counters())
    }

    fn set_change_tracking(&mut self, enabled: bool) -> bool {
        self.set_change_detection(enabled);
        true
    }

    fn drain_changed(&mut self) -> Vec<VoxelKey> {
        let mut keys: Vec<VoxelKey> = self.changed_keys().copied().collect();
        keys.sort_unstable();
        self.reset_changed_keys();
        keys
    }

    fn save_bytes(&self) -> Result<Vec<u8>, MapError> {
        Ok(self.to_bytes())
    }

    fn num_leaves(&self) -> usize {
        self.iter_leaves().count()
    }

    fn is_empty(&self) -> bool {
        OccupancyOctree::is_empty(self)
    }
}

impl MapBackend for OmuAccelerator {
    fn backend_name(&self) -> &'static str {
        "accelerator"
    }

    fn converter(&self) -> &KeyConverter {
        OmuAccelerator::converter(self)
    }

    fn front_end(&self) -> FrontEnd {
        self.config().front_end
    }

    fn insert_scan(&mut self, scan: &Scan, engine: Engine) -> Result<IntegrationStats, MapError> {
        Ok(self.integrate_scan_with(scan, engine.update_engine())?)
    }

    fn insert_points(
        &mut self,
        origin: Point3,
        points: &[Point3],
        engine: Engine,
    ) -> Result<IntegrationStats, MapError> {
        // The accelerator's DMA front end consumes whole scans; the copy
        // here models the host marshalling the cloud for transfer.
        let scan = Scan::new(origin, points.iter().copied().collect::<PointCloud>());
        MapBackend::insert_scan(self, &scan, engine)
    }

    fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        self.query_key(key)
    }

    fn occupancy_batch(&mut self, keys: &[VoxelKey], _shards: usize) -> Vec<Occupancy> {
        // One modeled device: host-side sharding does not apply.
        self.query_batch(keys)
    }

    fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, MapError> {
        Ok(OmuAccelerator::cast_ray(
            self,
            origin,
            direction,
            max_range,
            ignore_unknown,
        )?)
    }

    fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
        _shards: usize,
    ) -> Result<Vec<RayCastResult>, MapError> {
        Ok(OmuAccelerator::cast_rays(
            self,
            rays,
            max_range,
            ignore_unknown,
        )?)
    }

    fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, MapError> {
        Ok(OmuAccelerator::collides_sphere(self, center, radius)?)
    }

    fn take_query_counters(&mut self) -> Option<QueryCounters> {
        None
    }

    fn peek_logodds(&self, key: VoxelKey) -> Option<f32> {
        OmuAccelerator::peek_logodds(self, key)
    }

    fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)> {
        OmuAccelerator::snapshot(self)
    }

    fn leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<LeafInfo> {
        let resolved = self.config().params.resolve::<FixedLogOdds>();
        // The PEs prune subtrees outside the box, so this scales with
        // the region, not the map.
        self.snapshot_in_box(min, max)
            .into_iter()
            .map(|(key, depth, logodds)| LeafInfo {
                key,
                depth,
                logodds,
                // `logodds` came out of a FixedLogOdds, so the roundtrip
                // is exact and the classification matches the PE's.
                occupancy: resolved.classify(FixedLogOdds::from_f32(logodds)),
            })
            .collect()
    }

    fn op_counters(&self) -> Option<OpCounters> {
        None
    }

    fn set_change_tracking(&mut self, _enabled: bool) -> bool {
        false
    }

    fn drain_changed(&mut self) -> Vec<VoxelKey> {
        Vec::new()
    }

    fn save_bytes(&self) -> Result<Vec<u8>, MapError> {
        Err(MapError::Unsupported {
            backend: self.backend_name(),
            feature: "map serialization (mirror the map on a software backend to persist it)",
        })
    }

    fn num_leaves(&self) -> usize {
        OmuAccelerator::num_leaves(self)
    }

    fn is_empty(&self) -> bool {
        OmuAccelerator::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_core::OmuConfig;
    use omu_octree::OctreeF32;

    fn scan(points: &[Point3]) -> Scan {
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            points.iter().copied().collect::<PointCloud>(),
        )
    }

    #[test]
    fn tree_backend_dispatches_every_engine() {
        let points = [Point3::new(1.0, 0.2, 0.1), Point3::new(-1.0, 0.4, 0.3)];
        let mut reference = OctreeF32::new(0.1).unwrap();
        MapBackend::insert_scan(&mut reference, &scan(&points), Engine::Scalar).unwrap();
        for engine in [
            Engine::Batched,
            Engine::Parallel,
            Engine::Sharded { shards: 2 },
        ] {
            let mut t = OctreeF32::new(0.1).unwrap();
            MapBackend::insert_scan(&mut t, &scan(&points), engine).unwrap();
            assert_eq!(
                MapBackend::snapshot(&t),
                MapBackend::snapshot(&reference),
                "{engine}"
            );
        }
    }

    #[test]
    fn accelerator_backend_matches_leaf_box_iteration() {
        let mut tree = OctreeFixedForTest::build();
        let mut accel =
            OmuAccelerator::new(OmuConfig::builder().resolution(0.1).build().unwrap()).unwrap();
        let points: Vec<Point3> = (0..24)
            .map(|i| {
                let a = i as f64 * 0.26;
                Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
            })
            .collect();
        let s = scan(&points);
        MapBackend::insert_scan(&mut tree.0, &s, Engine::Batched).unwrap();
        MapBackend::insert_scan(&mut accel, &s, Engine::Batched).unwrap();

        let min = VoxelKey::new(32000, 32000, 32000);
        let max = VoxelKey::new(33500, 33500, 33500);
        let a = MapBackend::leaves_in_box(&tree.0, min, max);
        let b = MapBackend::leaves_in_box(&accel, min, max);
        let canon = |mut v: Vec<LeafInfo>| {
            v.sort_by_key(|l| (l.key, l.depth));
            v
        };
        assert!(!a.is_empty());
        assert_eq!(canon(a), canon(b));
    }

    /// A fixed-point tree configured identically to the default
    /// accelerator (the accelerator runs Q5.10 fixed point).
    struct OctreeFixedForTest(omu_octree::OctreeFixed);

    impl OctreeFixedForTest {
        fn build() -> Self {
            let config = OmuConfig::builder().resolution(0.1).build().unwrap();
            let mut t =
                omu_octree::OctreeFixed::with_params(config.resolution, config.params).unwrap();
            t.set_integration_mode(config.integration_mode);
            t.set_max_range(config.max_range);
            OctreeFixedForTest(t)
        }
    }
}
