//! Map construction: every knob resolved up front.

use std::path::PathBuf;
use std::sync::Arc;

use omu_core::{OmuAccelerator, OmuConfig};
use omu_geometry::OccupancyParams;
use omu_octree::{OctreeF32, OctreeFixed, WorkerPool};
use omu_raycast::{FrontEnd, IntegrationMode};

use crate::durable::{DurabilityPolicy, DurableDir, FaultPlan, FaultyDir, RealDir};
use crate::engine::Engine;
use crate::error::MapError;
use crate::map::{Inner, OccupancyMap};

/// Where the durability layer stores its blobs: a filesystem path
/// (resolved to a [`RealDir`] at spawn time) or an injected store.
#[derive(Debug, Clone)]
pub(crate) enum DurabilityTarget {
    Path(PathBuf),
    Store(Arc<dyn DurableDir>),
}

/// A resolved durability configuration: the live store (possibly
/// fault-wrapped) and the checkpoint policy, or `None` when the
/// builder has no durability directory.
pub(crate) type DurabilitySetup = Option<(Arc<dyn DurableDir>, DurabilityPolicy)>;

/// Which map-holding engine backs an [`OccupancyMap`].
///
/// # Examples
///
/// ```
/// use omu_map::{Backend, MapBuilder};
/// use omu_core::OmuConfig;
///
/// // Software octree (f32 log-odds, OctoMap's native representation):
/// let sw = MapBuilder::new(0.1).build()?;
/// // Accelerator model at the paper's design point:
/// let hw = MapBuilder::new(0.1)
///     .backend(Backend::Accelerator(OmuConfig::default()))
///     .build()?;
/// assert_eq!(sw.resolution(), hw.resolution());
/// # Ok::<(), omu_map::MapError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub enum Backend {
    /// The software octree on `f32` log-odds (the default; OctoMap's
    /// native representation).
    #[default]
    Software,
    /// The software octree on the accelerator's 16-bit fixed point —
    /// bit-identical to [`Backend::Accelerator`] for the same scans,
    /// which is what the equivalence suite verifies.
    SoftwareFixed,
    /// The OMU accelerator model. The builder's resolution, sensor
    /// model, max range, integration mode and pruning flag override the
    /// corresponding fields of the supplied configuration, so the
    /// builder stays the single source of truth for map semantics; the
    /// configuration contributes the hardware geometry (PE count, T-Mem
    /// rows, clock, timing, burst discount).
    Accelerator(OmuConfig),
}

impl Backend {
    /// The backend's human-readable name (matches
    /// [`MapBackend::backend_name`](crate::MapBackend::backend_name)).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Software | Backend::SoftwareFixed => "software",
            Backend::Accelerator(_) => "accelerator",
        }
    }
}

/// Builder for [`OccupancyMap`]: resolves backend, engine and every map
/// knob (sensor model, integration mode, max range, pruning, change
/// detection) before the first scan arrives.
///
/// # Examples
///
/// ```
/// use omu_map::{Engine, MapBuilder};
/// use omu_geometry::{Occupancy, Point3};
///
/// let mut map = MapBuilder::new(0.1)
///     .engine(Engine::Sharded { shards: 8 })
///     .max_range(Some(10.0))
///     .build()?;
/// map.insert_points(Point3::ZERO, &[Point3::new(1.0, 0.0, 0.0)])?;
/// assert_eq!(
///     map.occupancy_at(Point3::new(1.0, 0.0, 0.0))?,
///     Occupancy::Occupied
/// );
/// # Ok::<(), omu_map::MapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MapBuilder {
    resolution: f64,
    params: OccupancyParams,
    engine: Engine,
    backend: Backend,
    integration_mode: IntegrationMode,
    front_end: FrontEnd,
    max_range: Option<f64>,
    pruning: bool,
    change_detection: bool,
    worker_threads: usize,
    task_shuffle_seed: Option<u64>,
    pub(crate) durability: Option<(DurabilityTarget, DurabilityPolicy)>,
    pub(crate) queue_capacity: Option<usize>,
    pub(crate) fault_plan: Option<FaultPlan>,
}

impl MapBuilder {
    /// Starts a builder for a map with voxels `resolution` metres across,
    /// with OctoMap's default sensor model, the batched engine and the
    /// software backend.
    pub fn new(resolution: f64) -> Self {
        MapBuilder {
            resolution,
            params: OccupancyParams::default(),
            engine: Engine::default(),
            backend: Backend::default(),
            integration_mode: IntegrationMode::default(),
            front_end: FrontEnd::default(),
            max_range: None,
            pruning: true,
            change_detection: false,
            worker_threads: 0,
            task_shuffle_seed: None,
            durability: None,
            queue_capacity: None,
            fault_plan: None,
        }
    }

    /// Selects the update engine (default: [`Engine::Batched`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the backend (default: [`Backend::Software`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the occupancy sensor model.
    pub fn params(mut self, params: OccupancyParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the scan-integration overlap mode (default:
    /// [`IntegrationMode::Raywise`], the workload the paper counts).
    pub fn integration_mode(mut self, mode: IntegrationMode) -> Self {
        self.integration_mode = mode;
        self
    }

    /// Selects the ray-casting DDA front end (default:
    /// [`FrontEnd::Packet`], the 8-lane SoA packet stepper). The two
    /// front ends produce bit-identical maps; [`FrontEnd::Scalar`] exists
    /// for ablations and as the reference the equivalence suite checks
    /// the packet path against.
    pub fn front_end(mut self, front_end: FrontEnd) -> Self {
        self.front_end = front_end;
        self
    }

    /// Sets the maximum sensor range in metres (`None` = unlimited).
    pub fn max_range(mut self, max_range: Option<f64>) -> Self {
        self.max_range = max_range;
        self
    }

    /// Enables or disables pruning (default: enabled).
    pub fn pruning(mut self, enabled: bool) -> Self {
        self.pruning = enabled;
        self
    }

    /// Sets the size of the persistent worker pool that backs every
    /// parallel path of the software backends (sharded batch applies,
    /// pipeline ray casting, chunked batch reads). `0` (the default)
    /// resolves to `max(8, available CPUs)` — 8 because the sharded
    /// write engine splits work by first-level branch, of which there
    /// are exactly 8. Workers spawn lazily on first use and persist for
    /// the map's lifetime, so no parallel call ever pays a thread
    /// spawn. Ignored by the accelerator backend (one modeled device).
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// Seeds the worker pool's deterministic task-order shuffle (a
    /// stress knob: scopes publish their tasks in a seeded permuted
    /// order, flushing any order-dependence in the parallel engines —
    /// results must stay bit-identical). Software backends only; also
    /// settable process-wide via the `OMU_POOL_SHUFFLE_SEED`
    /// environment variable.
    pub fn task_shuffle_seed(mut self, seed: u64) -> Self {
        self.task_shuffle_seed = Some(seed);
        self
    }

    /// Enables change tracking so consumers can drain the set of voxels
    /// whose classification flipped
    /// ([`OccupancyMap::drain_changed_keys`]). Only the software
    /// backends track changes; building an accelerator-backed map with
    /// this enabled fails with [`MapError::Unsupported`].
    pub fn change_detection(mut self, enabled: bool) -> Self {
        self.change_detection = enabled;
        self
    }

    /// Makes the [`MapService`](crate::MapService) spawned from this
    /// builder crash-safe: every drained scan batch is appended to a
    /// write-ahead log under `dir` before it is applied, and `policy`
    /// decides when a full checkpoint of the serving map is cut (on a
    /// dedicated thread, at zero writer cost). After a crash,
    /// [`MapService::recover`](crate::MapService::recover) rebuilds the
    /// map from the newest checkpoint plus the WAL tail.
    ///
    /// The directory is created (with parents) at spawn time; spawning
    /// into a directory that already holds checkpoint or WAL files is
    /// refused — recover from it instead. Only affects services; plain
    /// [`Self::build`] maps ignore it.
    pub fn durability<P: Into<PathBuf>>(mut self, dir: P, policy: DurabilityPolicy) -> Self {
        self.durability = Some((DurabilityTarget::Path(dir.into()), policy));
        self
    }

    /// [`Self::durability`] against an injected storage backend instead
    /// of a filesystem directory — how the fault-injection tests swap in
    /// a [`FaultyDir`](crate::FaultyDir).
    pub fn durability_store(
        mut self,
        store: Arc<dyn DurableDir>,
        policy: DurabilityPolicy,
    ) -> Self {
        self.durability = Some((DurabilityTarget::Store(store), policy));
        self
    }

    /// Bounds the [`MapService`](crate::MapService) ingest queue at
    /// `capacity` commands. When the writer falls behind and the queue
    /// fills, `ingest` returns [`MapError::Backpressure`] instead of
    /// enqueuing (the default queue is unbounded and never pushes back).
    /// `flush` and shutdown always block for a slot rather than failing.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// Injects a scripted [`FaultPlan`] into the durability store —
    /// every mutating storage operation runs through the plan's fault
    /// schedule. Also settable process-wide via the
    /// `OMU_DURABILITY_FAULT_SEED` environment variable (the builder
    /// knob wins). No effect without [`Self::durability`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Resolves the durability knobs into a live store: path targets
    /// become [`RealDir`]s, and a configured (or environment-selected)
    /// fault plan wraps the store in a [`FaultyDir`].
    pub(crate) fn durability_setup(&self) -> Result<DurabilitySetup, MapError> {
        let Some((target, policy)) = &self.durability else {
            return Ok(None);
        };
        let store: Arc<dyn DurableDir> = match target {
            DurabilityTarget::Path(p) => Arc::new(RealDir::create(p.clone())?),
            DurabilityTarget::Store(s) => Arc::clone(s),
        };
        let plan = self.fault_plan.clone().or_else(FaultPlan::from_env);
        let store = match plan {
            Some(plan) if !plan.is_empty() => Arc::new(FaultyDir::new(store, plan)) as _,
            _ => store,
        };
        Ok(Some((store, *policy)))
    }

    /// The configured durability policy, if any.
    pub(crate) fn durability_policy(&self) -> Option<DurabilityPolicy> {
        self.durability.as_ref().map(|(_, policy)| *policy)
    }

    /// Builds the map, validating every knob.
    ///
    /// # Errors
    ///
    /// [`MapError::Resolution`] for a non-positive resolution,
    /// [`MapError::InvalidShards`] for an out-of-range
    /// [`Engine::Sharded`] count, [`MapError::Config`] for an invalid
    /// accelerator configuration, and [`MapError::Unsupported`] for
    /// change detection on the accelerator backend.
    pub fn build(self) -> Result<OccupancyMap, MapError> {
        self.engine.validate()?;
        let inner = match self.backend {
            Backend::Software => {
                let mut tree = OctreeF32::with_params(self.resolution, self.params)?;
                self.configure_tree(&mut tree);
                Inner::Software(Box::new(tree))
            }
            Backend::SoftwareFixed => {
                let mut tree = OctreeFixed::with_params(self.resolution, self.params)?;
                self.configure_tree(&mut tree);
                Inner::SoftwareFixed(Box::new(tree))
            }
            Backend::Accelerator(mut config) => {
                if self.change_detection {
                    return Err(MapError::Unsupported {
                        backend: "accelerator",
                        feature: "change detection",
                    });
                }
                config.resolution = self.resolution;
                config.params = self.params;
                config.max_range = self.max_range;
                config.integration_mode = self.integration_mode;
                config.front_end = self.front_end;
                config.pruning_enabled = self.pruning;
                Inner::Accelerator(Box::new(OmuAccelerator::new(config)?))
            }
        };
        Ok(OccupancyMap::from_parts(inner, self.engine))
    }

    /// [`Self::build`], but restoring the tree contents from serialized
    /// bytes (a checkpoint blob) instead of starting empty. Resolution
    /// and sensor model come from the encoding; every behavioural knob
    /// (engine, integration mode, pruning, change detection, …) comes
    /// from the builder, exactly as in a fresh build.
    ///
    /// # Errors
    ///
    /// [`MapError::Decode`] for malformed bytes; [`MapError::Unsupported`]
    /// for the accelerator backend (checkpoints come from snapshots,
    /// which only the software backends can publish).
    pub(crate) fn build_restored(&self, bytes: &[u8]) -> Result<OccupancyMap, MapError> {
        self.engine.validate()?;
        let inner = match &self.backend {
            Backend::Software => {
                let mut tree = OctreeF32::from_bytes(bytes)?;
                self.configure_tree(&mut tree);
                Inner::Software(Box::new(tree))
            }
            Backend::SoftwareFixed => {
                let mut tree = OctreeFixed::from_bytes(bytes)?;
                self.configure_tree(&mut tree);
                Inner::SoftwareFixed(Box::new(tree))
            }
            Backend::Accelerator(_) => {
                return Err(MapError::Unsupported {
                    backend: "accelerator",
                    feature: "checkpoint restore (snapshots require a software backend)",
                })
            }
        };
        Ok(OccupancyMap::from_parts(inner, self.engine))
    }

    fn configure_tree<V: omu_geometry::LogOdds>(&self, tree: &mut omu_octree::OccupancyOctree<V>) {
        tree.set_integration_mode(self.integration_mode);
        tree.set_front_end(self.front_end);
        tree.set_max_range(self.max_range);
        tree.set_pruning_enabled(self.pruning);
        tree.set_change_detection(self.change_detection);
        if self.worker_threads > 0 {
            tree.set_worker_pool(Arc::new(WorkerPool::new(self.worker_threads)));
        }
        if self.task_shuffle_seed.is_some() {
            tree.set_task_shuffle_seed(self.task_shuffle_seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_software_batched_map() {
        let map = MapBuilder::new(0.1).build().unwrap();
        assert_eq!(map.engine(), Engine::Batched);
        assert_eq!(map.backend_name(), "software");
        assert!(map.is_empty());
    }

    #[test]
    fn bad_resolution_is_a_map_error() {
        assert!(matches!(
            MapBuilder::new(-1.0).build(),
            Err(MapError::Resolution(_))
        ));
    }

    #[test]
    fn bad_shard_count_rejected_at_build() {
        assert!(matches!(
            MapBuilder::new(0.1)
                .engine(Engine::Sharded { shards: 99 })
                .build(),
            Err(MapError::InvalidShards(99))
        ));
    }

    #[test]
    fn accelerator_config_is_overridden_by_builder_knobs() {
        let config = OmuConfig::builder().resolution(0.7).build().unwrap();
        let map = MapBuilder::new(0.1)
            .max_range(Some(5.0))
            .backend(Backend::Accelerator(config))
            .build()
            .unwrap();
        assert_eq!(map.resolution(), 0.1);
        let accel = map.accelerator().unwrap();
        assert_eq!(accel.config().max_range, Some(5.0));
    }

    #[test]
    fn front_end_knob_reaches_both_backends() {
        let sw = MapBuilder::new(0.1).build().unwrap();
        assert_eq!(sw.front_end(), FrontEnd::Packet, "packet is the default");
        let sw = MapBuilder::new(0.1)
            .front_end(FrontEnd::Scalar)
            .build()
            .unwrap();
        assert_eq!(sw.front_end(), FrontEnd::Scalar);
        let hw = MapBuilder::new(0.1)
            .front_end(FrontEnd::Scalar)
            .backend(Backend::Accelerator(OmuConfig::default()))
            .build()
            .unwrap();
        assert_eq!(hw.front_end(), FrontEnd::Scalar);
    }

    #[test]
    fn change_detection_on_accelerator_is_unsupported() {
        let e = MapBuilder::new(0.1)
            .change_detection(true)
            .backend(Backend::Accelerator(OmuConfig::default()))
            .build()
            .unwrap_err();
        assert!(matches!(e, MapError::Unsupported { .. }));
    }

    #[test]
    fn invalid_accelerator_config_is_a_config_error() {
        let config = OmuConfig {
            num_pes: 3,
            ..OmuConfig::default()
        };
        let e = MapBuilder::new(0.1)
            .backend(Backend::Accelerator(config))
            .build()
            .unwrap_err();
        assert!(matches!(e, MapError::Config(_)));
    }
}
