//! The unified mapping facade: one [`OccupancyMap`] API over every
//! engine and backend of the OMU reproduction.
//!
//! Two layers of engine growth left the low-level surface fragmented:
//! the software octree exposes `insert_scan` / `insert_scan_batched` /
//! `insert_scan_parallel` / `insert_points_parallel`, the accelerator
//! model `integrate_scan` / `integrate_scan_batched` /
//! `integrate_scan_sharded`, and their query paths return two different
//! error types. This crate is the front door over all of it, modeled on
//! the unified occupancy interfaces of OHM (one map API over CPU/GPU
//! backends) and the VDB-mapping library (one insert/query facade):
//!
//! - [`MapBuilder`] resolves every knob up front — resolution, sensor
//!   model, [`Engine`] (scalar / batched / parallel / sharded),
//!   [`Backend`] (software octree in either value representation, or
//!   the OMU accelerator model), integration mode, max range, pruning,
//!   change detection.
//! - [`OccupancyMap`] unifies ingestion ([`OccupancyMap::insert`], the
//!   borrow-based [`OccupancyMap::insert_points`] riding the persistent
//!   `ScanPipeline`), queries behind one [`QueryView`] (occupancy,
//!   ray casting, sphere collision probes, region iteration),
//!   change-set draining and persistence.
//! - [`MapBackend`] is the trait both
//!   [`OccupancyOctree`](omu_octree::OccupancyOctree) and
//!   [`OmuAccelerator`](omu_core::OmuAccelerator) implement, so engine
//!   and backend selection are *values*, not method names.
//! - [`MapError`] replaces the historical `KeyError`-vs-`AccelError`
//!   split with one error type; out-of-bounds coordinates are a typed
//!   variant, never a panic or a silent `Free`.
//!
//! Every engine produces bit-identical maps on every backend (the
//! fixed-point software backend matches the accelerator bit-for-bit);
//! the workspace equivalence suite enforces it.
//!
//! # Examples
//!
//! ```
//! use omu_map::{Backend, Engine, MapBuilder};
//! use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), omu_map::MapError> {
//! let mut map = MapBuilder::new(0.1)
//!     .engine(Engine::Sharded { shards: 8 })
//!     .max_range(Some(12.0))
//!     .build()?;
//! let scan = Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
//! );
//! map.insert(&scan)?;
//! assert_eq!(
//!     map.occupancy_at(Point3::new(1.0, 0.0, 0.25))?,
//!     Occupancy::Occupied
//! );
//! # Ok(())
//! # }
//! ```

mod backend;
mod builder;
mod durable;
mod engine;
mod error;
mod map;
mod service;
mod wal;

pub use backend::MapBackend;
pub use builder::{Backend, MapBuilder};
pub use durable::{
    DurabilityPolicy, DurableDir, DurableFile, FaultKind, FaultPlan, FaultyDir, RealDir,
};
pub use engine::{Engine, ParseEngineError, MAX_SHARDS};
pub use error::MapError;
pub use map::{OccupancyMap, QueryView};
pub use omu_raycast::FrontEnd;
pub use service::{
    ChangeSubscription, MapService, MapSnapshot, RecoveryReport, ServiceHealth, ServiceStats,
    CHANGE_RING_EPOCHS, DEFAULT_CHECKPOINT_EPOCHS,
};
