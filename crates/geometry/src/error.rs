//! Error types for coordinate and resolution validation.

use std::error::Error;
use std::fmt;

/// A coordinate could not be converted to a voxel key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyError {
    /// The coordinate lies outside the map addressable at this resolution.
    OutOfRange {
        /// The offending coordinate in metres.
        coord: f64,
        /// The map resolution in metres.
        resolution: f64,
    },
    /// The coordinate is NaN or infinite.
    NotFinite {
        /// The offending coordinate.
        coord: f64,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::OutOfRange { coord, resolution } => write!(
                f,
                "coordinate {coord} m outside map addressable at resolution {resolution} m"
            ),
            KeyError::NotFinite { coord } => {
                write!(f, "coordinate {coord} is not finite")
            }
        }
    }
}

impl Error for KeyError {}

/// A map resolution was not a positive finite number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionError {
    /// The offending resolution in metres.
    pub resolution: f64,
}

impl fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "map resolution must be positive and finite, got {}",
            self.resolution
        )
    }
}

impl Error for ResolutionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = KeyError::OutOfRange {
            coord: 1e9,
            resolution: 0.2,
        };
        assert!(e.to_string().contains("outside map"));
        let e = KeyError::NotFinite { coord: f64::NAN };
        assert!(e.to_string().contains("not finite"));
        let e = ResolutionError { resolution: -1.0 };
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KeyError>();
        assert_err::<ResolutionError>();
    }
}
