//! Geometric and numeric primitives shared by every crate in the OMU
//! reproduction.
//!
//! This crate mirrors the foundation layer of the OctoMap C++ library
//! (Hornung et al., 2013) that the OMU accelerator paper (Jia et al.,
//! DATE 2022) builds on:
//!
//! - [`Point3`] — 3D points/vectors in metres.
//! - [`VoxelKey`] — the 16-bit-per-axis discrete voxel addresses used by a
//!   depth-16 octree, plus coordinate conversions ([`KeyConverter`]).
//! - [`LogOdds`] helpers and [`OccupancyParams`] — the probabilistic sensor
//!   model (hit/miss log-odds, clamping, occupancy thresholds).
//! - [`FixedLogOdds`] — the 16-bit fixed-point log-odds representation used
//!   by the accelerator's 64-bit node entries (`prob[15:0]` in Fig. 5 of the
//!   paper).
//! - [`PointCloud`] / [`Scan`] — sensor data containers.
//! - [`Aabb`] — axis-aligned bounding boxes.
//!
//! # Examples
//!
//! ```
//! use omu_geometry::{KeyConverter, Point3};
//!
//! let conv = KeyConverter::new(0.2).unwrap(); // 0.2 m voxels
//! let key = conv.coord_to_key(Point3::new(1.0, -2.0, 0.5)).unwrap();
//! let center = conv.key_to_coord(key);
//! assert!((center.x - 1.1).abs() < 1e-9);
//! ```

mod aabb;
mod error;
mod fixed;
mod key;
mod logodds;
mod point;
mod pointcloud;

pub use aabb::Aabb;
pub use error::{KeyError, ResolutionError};
pub use fixed::FixedLogOdds;
pub use key::{ChildIndex, KeyConverter, VoxelKey, TREE_DEPTH, TREE_MAX_VAL};
pub use logodds::{
    logodds_to_prob, prob_to_logodds, LogOdds, Occupancy, OccupancyParams, ResolvedParams,
};
pub use point::Point3;
pub use pointcloud::{PointCloud, Scan};
