//! Axis-aligned bounding boxes.

use serde::{Deserialize, Serialize};

use crate::point::Point3;

/// An axis-aligned bounding box defined by two corners.
///
/// Used by the dataset generators (scene extents, sensor clipping) and by
/// map statistics (observed region).
///
/// # Examples
///
/// ```
/// use omu_geometry::{Aabb, Point3};
///
/// let b = Aabb::new(Point3::ZERO, Point3::new(1.0, 2.0, 3.0));
/// assert!(b.contains(Point3::new(0.5, 1.0, 2.9)));
/// assert_eq!(b.volume(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Point3,
    max: Point3,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point3, b: Point3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// An empty box suitable as the identity for [`Aabb::union_point`].
    pub fn empty() -> Self {
        Aabb {
            min: Point3::splat(f64::INFINITY),
            max: Point3::splat(f64::NEG_INFINITY),
        }
    }

    /// True when the box contains no points (as produced by [`Aabb::empty`]).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// The corner with minimal coordinates.
    #[inline]
    pub fn min(&self) -> Point3 {
        self.min
    }

    /// The corner with maximal coordinates.
    #[inline]
    pub fn max(&self) -> Point3 {
        self.max
    }

    /// The box centre.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths along each axis.
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Volume in cubic metres (0 for empty boxes).
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// True when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The smallest box containing `self` and `p`.
    #[must_use]
    pub fn union_point(&self, p: Point3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// The smallest box containing both boxes.
    #[must_use]
    pub fn union(&self, other: &Aabb) -> Aabb {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Expands the box by `margin` metres on every side.
    #[must_use]
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb {
            min: self.min - Point3::splat(margin),
            max: self.max + Point3::splat(margin),
        }
    }

    /// Intersects a ray `origin + t * dir` with the box using the slab
    /// method, returning the entry/exit parameters `(t_near, t_far)` with
    /// `t_near <= t_far` when the ray hits.
    ///
    /// `t_near` may be negative when the origin is inside the box.
    pub fn intersect_ray(&self, origin: Point3, dir: Point3) -> Option<(f64, f64)> {
        let mut t_near = f64::NEG_INFINITY;
        let mut t_far = f64::INFINITY;
        for axis in 0..3 {
            let o = origin[axis];
            let d = dir[axis];
            let (lo, hi) = (self.min[axis], self.max[axis]);
            if d.abs() < 1e-15 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut t0, mut t1) = ((lo - o) * inv, (hi - o) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_near = t_near.max(t0);
                t_far = t_far.min(t1);
                if t_near > t_far {
                    return None;
                }
            }
        }
        Some((t_near, t_far))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalized() {
        let b = Aabb::new(Point3::new(1.0, -1.0, 2.0), Point3::new(0.0, 1.0, 0.0));
        assert_eq!(b.min(), Point3::new(0.0, -1.0, 0.0));
        assert_eq!(b.max(), Point3::new(1.0, 1.0, 2.0));
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        assert!(!e.contains(Point3::ZERO));
        let grown = e.union_point(Point3::new(1.0, 2.0, 3.0));
        assert!(!grown.is_empty());
        assert_eq!(grown.min(), grown.max());
    }

    #[test]
    fn contains_boundary_points() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        assert!(b.contains(Point3::ZERO));
        assert!(b.contains(Point3::splat(1.0)));
        assert!(!b.contains(Point3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        let b = Aabb::new(Point3::splat(2.0), Point3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Point3::splat(0.5)));
        assert!(u.contains(Point3::splat(2.5)));
        assert_eq!(a.union(&Aabb::empty()), a);
        assert_eq!(Aabb::empty().union(&a), a);
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0)).inflate(0.5);
        assert_eq!(b.min(), Point3::splat(-0.5));
        assert_eq!(b.max(), Point3::splat(1.5));
    }

    #[test]
    fn ray_hits_box_front() {
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(2.0));
        let (t0, t1) = b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 1.0, 1.0))
            .expect("ray should hit");
        assert!((t0 - 1.0).abs() < 1e-12);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ray_misses_box() {
        let b = Aabb::new(Point3::splat(1.0), Point3::splat(2.0));
        assert!(b
            .intersect_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0))
            .is_none());
        assert!(
            b.intersect_ray(Point3::ZERO, Point3::new(-1.0, -1.0, -1.0))
                .map(|(t0, _)| t0 >= 0.0)
                != Some(true)
        );
    }

    #[test]
    fn ray_from_inside_has_negative_t_near() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(2.0));
        let (t0, t1) = b
            .intersect_ray(Point3::splat(1.0), Point3::new(1.0, 0.0, 0.0))
            .expect("hit from inside");
        assert!(t0 < 0.0 && t1 > 0.0);
    }

    #[test]
    fn parallel_ray_inside_slab() {
        let b = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        // Parallel to x axis, inside the y/z slabs.
        assert!(b
            .intersect_ray(Point3::new(-1.0, 0.5, 0.5), Point3::new(1.0, 0.0, 0.0))
            .is_some());
        // Parallel to x axis, outside the y slab.
        assert!(b
            .intersect_ray(Point3::new(-1.0, 5.0, 0.5), Point3::new(1.0, 0.0, 0.0))
            .is_none());
    }

    #[test]
    fn center_extent_volume() {
        let b = Aabb::new(Point3::ZERO, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
        assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b.volume(), 48.0);
    }
}
