//! Discrete voxel addressing for a depth-16 octree.
//!
//! OctoMap (and therefore OMU) discretizes space into voxels addressed by a
//! 16-bit key per axis. The octree has [`TREE_DEPTH`] = 16 levels below the
//! root; a key identifies a *finest-resolution* voxel, and the key bits, read
//! from the most significant bit down, spell the path of child indices from
//! the root to that voxel. The OMU accelerator exploits exactly this
//! property: the first-level child index (bit 15 of each axis) selects the PE
//! unit, and each subsequent 3-bit group selects the memory bank at the next
//! tree level.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{KeyError, ResolutionError};
use crate::point::Point3;

/// Number of tree levels below the root (OctoMap default).
pub const TREE_DEPTH: u8 = 16;

/// Key offset of the map origin: coordinate 0 maps to key 2^15.
pub const TREE_MAX_VAL: u32 = 1 << 15;

/// A discrete voxel address at the finest tree depth.
///
/// Each axis is a 16-bit unsigned key; coordinate 0 m corresponds to key
/// [`TREE_MAX_VAL`], so the map is centred on the origin.
///
/// # Examples
///
/// ```
/// use omu_geometry::{VoxelKey, TREE_MAX_VAL};
///
/// let k = VoxelKey::new(TREE_MAX_VAL as u16, 0, u16::MAX);
/// assert_eq!(k.x, 32768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VoxelKey {
    /// Key along the x axis.
    pub x: u16,
    /// Key along the y axis.
    pub y: u16,
    /// Key along the z axis.
    pub z: u16,
}

impl VoxelKey {
    /// Creates a key from its three axis components.
    #[inline]
    pub const fn new(x: u16, y: u16, z: u16) -> Self {
        VoxelKey { x, y, z }
    }

    /// The key of the map origin voxel (coordinate `(0, 0, 0)` corner).
    pub const ORIGIN: VoxelKey = VoxelKey {
        x: TREE_MAX_VAL as u16,
        y: TREE_MAX_VAL as u16,
        z: TREE_MAX_VAL as u16,
    };

    /// Child index (0–7) of the node at depth `depth + 1` that contains this
    /// key, within its parent at depth `depth`.
    ///
    /// Bit `15 - depth` of each axis contributes one bit of the index
    /// (x → bit 0, y → bit 1, z → bit 2), matching OctoMap's
    /// `computeChildIdx` and the `child_ID` generation of the OMU voxel
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `depth >= TREE_DEPTH` (a depth-16 node has no children).
    #[inline]
    pub fn child_index_at(&self, depth: u8) -> ChildIndex {
        assert!(
            depth < TREE_DEPTH,
            "no children below depth {TREE_DEPTH} (got parent depth {depth})"
        );
        let b = (TREE_DEPTH - 1 - depth) as u32;
        let ix = ((self.x as u32) >> b) & 1;
        let iy = ((self.y as u32) >> b) & 1;
        let iz = ((self.z as u32) >> b) & 1;
        ChildIndex((ix | (iy << 1) | (iz << 2)) as u8)
    }

    /// First-level child index (bit 15 of each axis).
    ///
    /// This is the `branch ID` the OMU voxel scheduler uses to select the PE
    /// unit for an update.
    #[inline]
    pub fn first_level_branch(&self) -> ChildIndex {
        self.child_index_at(0)
    }

    /// The key of the containing node at a coarser `depth`, i.e. this key
    /// with the lower `16 - depth` bits cleared on every axis.
    ///
    /// For `depth == 16` the key is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `depth > TREE_DEPTH`.
    #[inline]
    pub fn at_depth(&self, depth: u8) -> VoxelKey {
        assert!(depth <= TREE_DEPTH, "depth {depth} exceeds {TREE_DEPTH}");
        if depth == TREE_DEPTH {
            return *self;
        }
        let mask = !(((1u32 << (TREE_DEPTH - depth)) - 1) as u16);
        VoxelKey::new(self.x & mask, self.y & mask, self.z & mask)
    }

    /// Iterator over the child indices on the path from the root (depth 0)
    /// down to this key's finest voxel (depth 16), in order.
    pub fn path_from_root(&self) -> impl Iterator<Item = ChildIndex> + '_ {
        let key = *self;
        (0..TREE_DEPTH).map(move |d| key.child_index_at(d))
    }

    /// Manhattan (L1) distance between two keys, in finest-voxel units.
    #[inline]
    pub fn manhattan_distance(&self, other: VoxelKey) -> u32 {
        let d = |a: u16, b: u16| (a as i32 - b as i32).unsigned_abs();
        d(self.x, other.x) + d(self.y, other.y) + d(self.z, other.z)
    }

    /// The key's 48-bit Morton (Z-order) code: the root-path child indices
    /// concatenated most-significant first, i.e. bits `3d+2..3d` of the
    /// code (counting groups from the top) are the child index at depth
    /// `d` with z as the group's MSB.
    ///
    /// Sorting keys by Morton code therefore sorts them by root path:
    /// every octree subtree occupies one contiguous code range, which is
    /// what lets the batched update engine visit each subtree exactly once
    /// (see `omu_octree`'s batch module).
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::VoxelKey;
    ///
    /// // The top 3 bits are the depth-0 child index (z, y, x).
    /// let k = VoxelKey::new(0x8000, 0, 0x8000);
    /// assert_eq!(k.morton_code() >> 45, 0b101);
    /// assert_eq!(k.morton_code() >> 45, k.child_index_at(0).index() as u64);
    /// ```
    #[inline]
    pub fn morton_code(&self) -> u64 {
        spread_every_third(self.x)
            | (spread_every_third(self.y) << 1)
            | (spread_every_third(self.z) << 2)
    }

    /// Number of tree levels (from the root) on which this key and
    /// `other` share their root path: 0 when they already split at the
    /// root's children, [`TREE_DEPTH`] when the keys are identical.
    ///
    /// The node at this depth is the deepest common ancestor of the two
    /// finest voxels — the level a batched updater can resume its descent
    /// from after processing `self` when `other` is next in Morton order.
    #[inline]
    pub fn common_prefix_depth(&self, other: VoxelKey) -> u8 {
        let diff = (self.x ^ other.x) | (self.y ^ other.y) | (self.z ^ other.z);
        diff.leading_zeros() as u8
    }
}

/// Spreads the 16 bits of `v` so bit `i` lands at bit `3i` of the result
/// (the classic "part-1-by-2" Morton helper).
#[inline]
fn spread_every_third(v: u16) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

impl fmt::Display for VoxelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}, {}]", self.x, self.y, self.z)
    }
}

impl From<(u16, u16, u16)> for VoxelKey {
    fn from(t: (u16, u16, u16)) -> Self {
        VoxelKey::new(t.0, t.1, t.2)
    }
}

/// A child slot index inside an octree node (0–7).
///
/// Bit 0 selects the upper x half, bit 1 the upper y half, bit 2 the upper z
/// half. In the OMU accelerator the child index doubles as the memory-bank
/// number: child `i` of any node is stored in `T-Mem i` (Fig. 5 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChildIndex(u8);

impl ChildIndex {
    /// Number of children of an octree node.
    pub const COUNT: usize = 8;

    /// Creates a child index.
    ///
    /// # Panics
    ///
    /// Panics if `i > 7`.
    #[inline]
    pub fn new(i: u8) -> Self {
        assert!(i < 8, "child index out of range: {i}");
        ChildIndex(i)
    }

    /// The raw index value (0–7).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// All eight child indices in order.
    #[inline]
    pub fn all() -> impl Iterator<Item = ChildIndex> {
        (0..8).map(ChildIndex)
    }

    /// True when the child covers the upper x half of its parent.
    #[inline]
    pub const fn x_bit(self) -> bool {
        self.0 & 1 != 0
    }

    /// True when the child covers the upper y half of its parent.
    #[inline]
    pub const fn y_bit(self) -> bool {
        self.0 & 2 != 0
    }

    /// True when the child covers the upper z half of its parent.
    #[inline]
    pub const fn z_bit(self) -> bool {
        self.0 & 4 != 0
    }
}

impl fmt::Display for ChildIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<ChildIndex> for usize {
    fn from(c: ChildIndex) -> usize {
        c.index()
    }
}

/// Converts between metric coordinates and voxel keys for a fixed map
/// resolution.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3};
///
/// let conv = KeyConverter::new(0.1).unwrap();
/// let key = conv.coord_to_key(Point3::new(0.05, -0.05, 0.0)).unwrap();
/// // Voxel centres are offset by half a voxel.
/// let c = conv.key_to_coord(key);
/// assert!((c.x - 0.05).abs() < 1e-9 && (c.y + 0.05).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyConverter {
    resolution: f64,
    inv_resolution: f64,
}

impl KeyConverter {
    /// Creates a converter for the given voxel edge length in metres.
    ///
    /// # Errors
    ///
    /// Returns [`ResolutionError`] if `resolution` is not a positive finite
    /// number.
    pub fn new(resolution: f64) -> Result<Self, ResolutionError> {
        if !(resolution.is_finite() && resolution > 0.0) {
            return Err(ResolutionError { resolution });
        }
        Ok(KeyConverter {
            resolution,
            inv_resolution: 1.0 / resolution,
        })
    }

    /// The voxel edge length in metres.
    #[inline]
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Edge length in metres of a node at `depth` (root = depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `depth > TREE_DEPTH`.
    #[inline]
    pub fn node_size(&self, depth: u8) -> f64 {
        assert!(depth <= TREE_DEPTH, "depth {depth} exceeds {TREE_DEPTH}");
        self.resolution * (1u64 << (TREE_DEPTH - depth)) as f64
    }

    /// Converts one coordinate to its axis key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the coordinate falls outside the map
    /// (|coord| ≳ 2¹⁵ · resolution) or is not finite.
    #[inline]
    pub fn coord_to_axis_key(&self, coord: f64) -> Result<u16, KeyError> {
        if !coord.is_finite() {
            return Err(KeyError::NotFinite { coord });
        }
        let cell = (coord * self.inv_resolution).floor() as i64 + TREE_MAX_VAL as i64;
        if (0..=u16::MAX as i64).contains(&cell) {
            Ok(cell as u16)
        } else {
            Err(KeyError::OutOfRange {
                coord,
                resolution: self.resolution,
            })
        }
    }

    /// Converts a metric point to its finest-depth voxel key.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if any coordinate is outside the addressable map.
    #[inline]
    pub fn coord_to_key(&self, p: Point3) -> Result<VoxelKey, KeyError> {
        Ok(VoxelKey::new(
            self.coord_to_axis_key(p.x)?,
            self.coord_to_axis_key(p.y)?,
            self.coord_to_axis_key(p.z)?,
        ))
    }

    /// Centre coordinate of one axis key at the finest depth.
    #[inline]
    pub fn axis_key_to_coord(&self, key: u16) -> f64 {
        (key as i64 - TREE_MAX_VAL as i64) as f64 * self.resolution + 0.5 * self.resolution
    }

    /// Centre of the finest-depth voxel addressed by `key`.
    #[inline]
    pub fn key_to_coord(&self, key: VoxelKey) -> Point3 {
        Point3::new(
            self.axis_key_to_coord(key.x),
            self.axis_key_to_coord(key.y),
            self.axis_key_to_coord(key.z),
        )
    }

    /// Centre of the node at `depth` that contains `key`.
    ///
    /// # Panics
    ///
    /// Panics if `depth > TREE_DEPTH`.
    pub fn key_to_coord_at_depth(&self, key: VoxelKey, depth: u8) -> Point3 {
        assert!(depth <= TREE_DEPTH, "depth {depth} exceeds {TREE_DEPTH}");
        let cell = 1u32 << (TREE_DEPTH - depth);
        let start = key.at_depth(depth);
        let axis = |k: u16| {
            (k as i64 - TREE_MAX_VAL as i64) as f64 * self.resolution
                + 0.5 * cell as f64 * self.resolution
        };
        Point3::new(axis(start.x), axis(start.y), axis(start.z))
    }

    /// Half the metric extent addressable along one axis.
    ///
    /// Coordinates within `(-map_half_extent, map_half_extent)` convert
    /// without error.
    #[inline]
    pub fn map_half_extent(&self) -> f64 {
        TREE_MAX_VAL as f64 * self.resolution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv() -> KeyConverter {
        KeyConverter::new(0.2).unwrap()
    }

    #[test]
    fn resolution_must_be_positive_finite() {
        assert!(KeyConverter::new(0.0).is_err());
        assert!(KeyConverter::new(-0.1).is_err());
        assert!(KeyConverter::new(f64::NAN).is_err());
        assert!(KeyConverter::new(f64::INFINITY).is_err());
        assert!(KeyConverter::new(0.05).is_ok());
    }

    #[test]
    fn origin_maps_to_tree_max_val() {
        let k = conv().coord_to_key(Point3::ZERO).unwrap();
        assert_eq!(k, VoxelKey::ORIGIN);
    }

    #[test]
    fn negative_coords_map_below_origin() {
        let k = conv().coord_to_key(Point3::new(-0.1, -0.3, 0.1)).unwrap();
        assert_eq!(k.x, TREE_MAX_VAL as u16 - 1);
        assert_eq!(k.y, TREE_MAX_VAL as u16 - 2);
        assert_eq!(k.z, TREE_MAX_VAL as u16);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let c = conv();
        let limit = c.map_half_extent();
        assert!(c.coord_to_key(Point3::new(limit + 1.0, 0.0, 0.0)).is_err());
        assert!(c.coord_to_key(Point3::new(0.0, -limit - 1.0, 0.0)).is_err());
        assert!(c.coord_to_key(Point3::new(0.0, 0.0, f64::NAN)).is_err());
    }

    #[test]
    fn key_to_coord_is_voxel_center() {
        let c = conv();
        let k = c.coord_to_key(Point3::new(1.0, 1.0, 1.0)).unwrap();
        let p = c.key_to_coord(k);
        assert!((p.x - 1.1).abs() < 1e-9, "center {p}");
    }

    #[test]
    fn node_size_doubles_each_level_up() {
        let c = conv();
        assert!((c.node_size(TREE_DEPTH) - 0.2).abs() < 1e-12);
        assert!((c.node_size(TREE_DEPTH - 1) - 0.4).abs() < 1e-12);
        assert!((c.node_size(0) - 0.2 * 65536.0).abs() < 1e-9);
    }

    #[test]
    fn child_index_spells_root_path() {
        // Key with all-ones bits descends through child 7 at every level.
        let k = VoxelKey::new(u16::MAX, u16::MAX, u16::MAX);
        for d in 0..TREE_DEPTH {
            assert_eq!(k.child_index_at(d).index(), 7);
        }
        // Key zero descends through child 0 at every level.
        let k = VoxelKey::new(0, 0, 0);
        for d in 0..TREE_DEPTH {
            assert_eq!(k.child_index_at(d).index(), 0);
        }
    }

    #[test]
    fn first_level_branch_uses_msb() {
        // Positive x half-space has x bit 15 set.
        let k = conv().coord_to_key(Point3::new(1.0, -1.0, -1.0)).unwrap();
        assert_eq!(k.first_level_branch().index(), 0b001);
        let k = conv().coord_to_key(Point3::new(-1.0, 1.0, 1.0)).unwrap();
        assert_eq!(k.first_level_branch().index(), 0b110);
    }

    #[test]
    fn at_depth_clears_low_bits() {
        let k = VoxelKey::new(0b1010_1010_1010_1010, 0xFFFF, 0x0001);
        let a = k.at_depth(8);
        assert_eq!(a.x, 0b1010_1010_0000_0000);
        assert_eq!(a.y, 0xFF00);
        assert_eq!(a.z, 0x0000);
        assert_eq!(k.at_depth(TREE_DEPTH), k);
    }

    #[test]
    fn path_from_root_has_tree_depth_elements() {
        let k = VoxelKey::ORIGIN;
        let path: Vec<_> = k.path_from_root().collect();
        assert_eq!(path.len(), TREE_DEPTH as usize);
        // Origin key = 0x8000 per axis: first step child 7, then child 0.
        assert_eq!(path[0].index(), 7);
        assert!(path[1..].iter().all(|c| c.index() == 0));
    }

    #[test]
    fn child_index_bits() {
        let c = ChildIndex::new(0b101);
        assert!(c.x_bit());
        assert!(!c.y_bit());
        assert!(c.z_bit());
        assert_eq!(ChildIndex::all().count(), 8);
    }

    #[test]
    #[should_panic(expected = "child index out of range")]
    fn child_index_range_checked() {
        let _ = ChildIndex::new(8);
    }

    #[test]
    fn manhattan_distance_counts_voxels() {
        let a = VoxelKey::new(10, 10, 10);
        let b = VoxelKey::new(12, 9, 10);
        assert_eq!(a.manhattan_distance(b), 3);
        assert_eq!(b.manhattan_distance(a), 3);
    }

    #[test]
    fn morton_code_places_each_axis_bit() {
        for i in 0..16u32 {
            assert_eq!(VoxelKey::new(1 << i, 0, 0).morton_code(), 1u64 << (3 * i));
            assert_eq!(
                VoxelKey::new(0, 1 << i, 0).morton_code(),
                1u64 << (3 * i + 1)
            );
            assert_eq!(
                VoxelKey::new(0, 0, 1 << i).morton_code(),
                1u64 << (3 * i + 2)
            );
        }
        assert_eq!(VoxelKey::new(0, 0, 0).morton_code(), 0);
        assert_eq!(
            VoxelKey::new(u16::MAX, u16::MAX, u16::MAX).morton_code(),
            (1u64 << 48) - 1
        );
    }

    #[test]
    fn common_prefix_depth_matches_at_depth() {
        let a = VoxelKey::new(0b1010_0000_0000_0000, 0, 0);
        let b = VoxelKey::new(0b1011_0000_0000_0000, 0, 0);
        assert_eq!(a.common_prefix_depth(b), 3);
        assert_eq!(a.common_prefix_depth(a), TREE_DEPTH);
        let c = VoxelKey::new(0, 0x8000, 0);
        assert_eq!(a.common_prefix_depth(c), 0);
    }

    proptest! {
        #[test]
        fn coord_key_roundtrip_within_half_voxel(
            x in -1000.0f64..1000.0,
            y in -1000.0f64..1000.0,
            z in -1000.0f64..1000.0,
        ) {
            let c = conv();
            let p = Point3::new(x, y, z);
            let k = c.coord_to_key(p).unwrap();
            let q = c.key_to_coord(k);
            // The reconstructed centre is within half a voxel of the input.
            prop_assert!((q.x - x).abs() <= 0.1 + 1e-9);
            prop_assert!((q.y - y).abs() <= 0.1 + 1e-9);
            prop_assert!((q.z - z).abs() <= 0.1 + 1e-9);
            // And converting the centre back yields the same key.
            prop_assert_eq!(c.coord_to_key(q).unwrap(), k);
        }

        #[test]
        fn path_bits_reconstruct_key(x in any::<u16>(), y in any::<u16>(), z in any::<u16>()) {
            let k = VoxelKey::new(x, y, z);
            let (mut rx, mut ry, mut rz) = (0u16, 0u16, 0u16);
            for (d, c) in k.path_from_root().enumerate() {
                let b = 15 - d;
                rx |= (c.x_bit() as u16) << b;
                ry |= (c.y_bit() as u16) << b;
                rz |= (c.z_bit() as u16) << b;
            }
            prop_assert_eq!(VoxelKey::new(rx, ry, rz), k);
        }

        #[test]
        fn morton_spells_root_path(x in any::<u16>(), y in any::<u16>(), z in any::<u16>()) {
            let k = VoxelKey::new(x, y, z);
            let code = k.morton_code();
            for d in 0..TREE_DEPTH {
                let group = (code >> (3 * (TREE_DEPTH - 1 - d))) & 0b111;
                prop_assert_eq!(group as usize, k.child_index_at(d).index());
            }
        }

        #[test]
        fn morton_prefix_agrees_with_common_depth(
            x in any::<u16>(), y in any::<u16>(), z in any::<u16>(),
            x2 in any::<u16>(), y2 in any::<u16>(), z2 in any::<u16>(),
        ) {
            let a = VoxelKey::new(x, y, z);
            let b = VoxelKey::new(x2, y2, z2);
            let s = a.common_prefix_depth(b);
            prop_assert_eq!(a.at_depth(s), b.at_depth(s));
            if s < TREE_DEPTH {
                prop_assert!(a.child_index_at(s) != b.child_index_at(s));
                // Morton codes agree on exactly the shared 3-bit groups.
                let shift = 3 * (TREE_DEPTH - s) as u32;
                prop_assert_eq!(a.morton_code() >> shift, b.morton_code() >> shift);
            }
        }

        #[test]
        fn at_depth_is_monotone_prefix(x in any::<u16>(), y in any::<u16>(), z in any::<u16>(), d in 0u8..=16) {
            let k = VoxelKey::new(x, y, z);
            let a = k.at_depth(d);
            // Coarser keys are prefixes: re-coarsening is idempotent.
            prop_assert_eq!(a.at_depth(d), a);
            // The coarse key is never larger than the fine key.
            prop_assert!(a.x <= k.x && a.y <= k.y && a.z <= k.z);
        }

        #[test]
        fn key_to_coord_at_depth_contains_fine_center(
            x in any::<u16>(), y in any::<u16>(), z in any::<u16>(), d in 0u8..=16,
        ) {
            let c = conv();
            let k = VoxelKey::new(x, y, z);
            let fine = c.key_to_coord(k);
            let coarse = c.key_to_coord_at_depth(k, d);
            let half = c.node_size(d) / 2.0;
            prop_assert!((fine.x - coarse.x).abs() <= half);
            prop_assert!((fine.y - coarse.y).abs() <= half);
            prop_assert!((fine.z - coarse.z).abs() <= half);
        }
    }
}
