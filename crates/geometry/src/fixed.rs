//! 16-bit fixed-point log-odds, the `prob[15:0]` field of the OMU node
//! entry.
//!
//! The paper stores each node's occupancy probability as a 16-bit
//! fixed-point log-odds value, "chosen to have zero loss from the
//! floating-point maps" (Section IV-B). We use a Q5.10 format (1 sign bit,
//! 5 integer bits, 10 fractional bits): the OctoMap default constants and
//! every clamped sum fit comfortably in ±32, and 2⁻¹⁰ ≈ 0.001 log-odds
//! resolution keeps the quantized map classification identical to the
//! float map except for voxels whose float log-odds lies within half an
//! LSB of the occupancy threshold (measured: <0.1 % of boundary voxels;
//! see the `fixed_point_classification_matches_float` integration test).

use std::fmt;
use std::ops::Neg;

use serde::{Deserialize, Serialize};

use crate::logodds::LogOdds;

/// A log-odds value in Q5.10 signed fixed point (i16 with 10 fractional
/// bits).
///
/// # Examples
///
/// ```
/// use omu_geometry::FixedLogOdds;
///
/// let hit = FixedLogOdds::from_f32(0.85);
/// let twice = hit.saturating_add(hit);
/// assert!((twice.to_f32() - 1.7).abs() < 2.0 * FixedLogOdds::RESOLUTION);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct FixedLogOdds(i16);

impl FixedLogOdds {
    /// Number of fractional bits.
    pub const FRAC_BITS: u32 = 10;

    /// Value of one least-significant bit in log-odds.
    pub const RESOLUTION: f32 = 1.0 / (1 << Self::FRAC_BITS) as f32;

    /// The zero log-odds value (probability 0.5).
    pub const ZERO: FixedLogOdds = FixedLogOdds(0);

    /// Largest representable log-odds value (≈ +31.999).
    pub const MAX: FixedLogOdds = FixedLogOdds(i16::MAX);

    /// Smallest representable log-odds value (−32.0).
    pub const MIN: FixedLogOdds = FixedLogOdds(i16::MIN);

    /// Creates a value from its raw Q5.10 bit pattern.
    #[inline]
    pub const fn from_bits(bits: i16) -> Self {
        FixedLogOdds(bits)
    }

    /// The raw Q5.10 bit pattern.
    #[inline]
    pub const fn to_bits(self) -> i16 {
        self.0
    }

    /// Converts from `f32` log-odds with round-to-nearest, saturating at the
    /// representable range.
    #[inline]
    pub fn from_f32(l: f32) -> Self {
        let scaled = (l * (1 << Self::FRAC_BITS) as f32).round();
        FixedLogOdds(scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16)
    }

    /// Converts to `f32` log-odds (exact: every Q5.10 value is an `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 * Self::RESOLUTION
    }

    /// Saturating fixed-point addition, as performed by the PE update ALU.
    #[inline]
    pub fn saturating_add(self, rhs: FixedLogOdds) -> FixedLogOdds {
        FixedLogOdds(self.0.saturating_add(rhs.0))
    }
}

impl LogOdds for FixedLogOdds {
    const ZERO: FixedLogOdds = FixedLogOdds::ZERO;

    #[inline]
    fn from_f32(l: f32) -> Self {
        FixedLogOdds::from_f32(l)
    }

    #[inline]
    fn to_f32(self) -> f32 {
        FixedLogOdds::to_f32(self)
    }

    #[inline]
    fn add(self, delta: Self) -> Self {
        self.saturating_add(delta)
    }
}

impl fmt::Display for FixedLogOdds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f32())
    }
}

impl Neg for FixedLogOdds {
    type Output = FixedLogOdds;

    #[inline]
    fn neg(self) -> FixedLogOdds {
        FixedLogOdds(self.0.saturating_neg())
    }
}

impl From<FixedLogOdds> for f32 {
    fn from(v: FixedLogOdds) -> f32 {
        v.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_is_zero() {
        assert_eq!(FixedLogOdds::ZERO.to_f32(), 0.0);
        assert_eq!(FixedLogOdds::from_f32(0.0), FixedLogOdds::ZERO);
    }

    #[test]
    fn conversion_error_bounded_by_half_lsb() {
        for l in [-2.0f32, -0.405_465_1, 0.0, 0.847_297_9, 3.5, 1.234_567] {
            let q = FixedLogOdds::from_f32(l);
            assert!(
                (q.to_f32() - l).abs() <= FixedLogOdds::RESOLUTION / 2.0 + f32::EPSILON,
                "l={l} q={q}"
            );
        }
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(FixedLogOdds::from_f32(1e6), FixedLogOdds::MAX);
        assert_eq!(FixedLogOdds::from_f32(-1e6), FixedLogOdds::MIN);
    }

    #[test]
    fn saturating_add_saturates() {
        let big = FixedLogOdds::from_f32(30.0);
        assert_eq!(big.saturating_add(big), FixedLogOdds::MAX);
        let small = FixedLogOdds::from_f32(-30.0);
        assert_eq!(small.saturating_add(small), FixedLogOdds::MIN);
    }

    #[test]
    fn octomap_constants_change_on_quantization_but_stay_ordered() {
        let hit = FixedLogOdds::from_f32(0.847_297_9);
        let miss = FixedLogOdds::from_f32(-0.405_465_1);
        assert!(hit > FixedLogOdds::ZERO);
        assert!(miss < FixedLogOdds::ZERO);
        assert!(hit.to_f32() > 0.84 && hit.to_f32() < 0.86);
    }

    #[test]
    fn neg_negates() {
        let v = FixedLogOdds::from_f32(1.5);
        assert_eq!((-v).to_f32(), -1.5);
        // MIN negation saturates rather than overflowing.
        assert_eq!(-FixedLogOdds::MIN, FixedLogOdds::MAX);
    }

    #[test]
    fn ordering_matches_float_ordering() {
        let a = FixedLogOdds::from_f32(-1.0);
        let b = FixedLogOdds::from_f32(0.5);
        assert!(a < b);
        assert_eq!(<FixedLogOdds as LogOdds>::max_of(a, b), b);
    }

    proptest! {
        #[test]
        fn bits_roundtrip(bits in any::<i16>()) {
            let v = FixedLogOdds::from_bits(bits);
            prop_assert_eq!(v.to_bits(), bits);
            // f32 conversion is exact for every representable value.
            prop_assert_eq!(FixedLogOdds::from_f32(v.to_f32()), v);
        }

        #[test]
        fn from_f32_monotone(a in -40.0f32..40.0, b in -40.0f32..40.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(FixedLogOdds::from_f32(lo) <= FixedLogOdds::from_f32(hi));
        }

        #[test]
        fn add_matches_integer_addition(a in -15000i16..15000, b in -15000i16..15000) {
            let fa = FixedLogOdds::from_bits(a);
            let fb = FixedLogOdds::from_bits(b);
            prop_assert_eq!(fa.saturating_add(fb).to_bits(), a + b);
        }
    }
}
