//! 3D points and vectors in metres.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3D point (or vector) in metres.
///
/// Used both for sensor origins/endpoints and for directions; the semantic
/// distinction is carried by context, matching OctoMap's `point3d`.
///
/// # Examples
///
/// ```
/// use omu_geometry::Point3;
///
/// let a = Point3::new(1.0, 2.0, 3.0);
/// let b = Point3::new(0.5, 0.5, 0.5);
/// assert_eq!(a + b, Point3::new(1.5, 2.5, 3.5));
/// assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
    /// Z coordinate in metres.
    pub z: f64,
}

impl Point3 {
    /// The origin `(0, 0, 0)`.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Euclidean norm (length as a vector).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm; cheaper than [`Point3::norm`] for comparisons.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point3) -> f64 {
        (*self - other).norm()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(&self, other: Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Returns the vector scaled to unit length.
    ///
    /// Returns `None` for the zero vector (no direction).
    #[inline]
    pub fn normalized(&self) -> Option<Point3> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(*self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(&self, other: Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(&self, other: Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(&self, other: Point3, t: f64) -> Point3 {
        *self + (other - *self) * t
    }

    /// True when every coordinate is finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

impl From<[f64; 3]> for Point3 {
    fn from(a: [f64; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f64; 3] {
    fn from(p: Point3) -> Self {
        [p.x, p.y, p.z]
    }
}

impl Index<usize> for Point3 {
    type Output = f64;

    /// Access coordinates by axis index (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // omu-lint: allow(no-panic) — the documented `Index` contract
            // (see `# Panics` above); `std` indexing panics the same way.
            _ => panic!("Point3 axis index out of range: {i}"),
        }
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_vectors() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Point3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Point3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn norm_and_distance() {
        let a = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.distance(Point3::ZERO), 5.0);
    }

    #[test]
    fn dot_and_cross_products() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Point3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Point3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(Point3::ZERO.normalized().is_none());
    }

    #[test]
    fn min_max_lerp() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(2.0, 0.0, -1.0);
        assert_eq!(a.min(b), Point3::new(1.0, 0.0, -2.0));
        assert_eq!(a.max(b), Point3::new(2.0, 5.0, -1.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn index_by_axis() {
        let a = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert_eq!(a[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "axis index out of range")]
    fn index_out_of_range_panics() {
        let _ = Point3::ZERO[3];
    }

    #[test]
    fn conversions_roundtrip() {
        let a = Point3::from([1.0, 2.0, 3.0]);
        let arr: [f64; 3] = a.into();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn finite_detection() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
