//! Sensor data containers: point clouds and scans.

use serde::{Deserialize, Serialize};

use crate::aabb::Aabb;
use crate::point::Point3;

/// A set of 3D points, typically the endpoints measured by one sensor
/// sweep.
///
/// # Examples
///
/// ```
/// use omu_geometry::{Point3, PointCloud};
///
/// let cloud: PointCloud = [Point3::new(1.0, 0.0, 0.0)].into_iter().collect();
/// assert_eq!(cloud.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PointCloud {
    points: Vec<Point3>,
}

impl PointCloud {
    /// Creates an empty point cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new() }
    }

    /// Creates an empty point cloud with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        PointCloud {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends one point.
    pub fn push(&mut self, p: Point3) {
        self.points.push(p);
    }

    /// The points as a slice.
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point3> {
        self.points.iter()
    }

    /// The bounding box of all points (empty box for an empty cloud).
    pub fn bounding_box(&self) -> Aabb {
        self.points
            .iter()
            .fold(Aabb::empty(), |b, &p| b.union_point(p))
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Point3>>(iter: I) -> Self {
        PointCloud {
            points: iter.into_iter().collect(),
        }
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<I: IntoIterator<Item = Point3>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

impl From<Vec<Point3>> for PointCloud {
    fn from(points: Vec<Point3>) -> Self {
        PointCloud { points }
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point3;
    type IntoIter = std::slice::Iter<'a, Point3>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for PointCloud {
    type Item = Point3;
    type IntoIter = std::vec::IntoIter<Point3>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

/// One sensor observation: a point cloud together with the sensor origin it
/// was taken from (both in the world frame).
///
/// This is the unit of work for map integration — OctoMap's
/// `insertPointCloud(cloud, origin)` and the OMU accelerator's per-frame
/// DMA transfer both consume scans.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scan {
    /// Sensor origin in the world frame.
    pub origin: Point3,
    /// Measured endpoints in the world frame.
    pub cloud: PointCloud,
}

impl Scan {
    /// Creates a scan from an origin and its measured endpoints.
    pub fn new(origin: Point3, cloud: PointCloud) -> Self {
        Scan { origin, cloud }
    }

    /// Number of points in the scan.
    pub fn len(&self) -> usize {
        self.cloud.len()
    }

    /// True when the scan holds no points.
    pub fn is_empty(&self) -> bool {
        self.cloud.is_empty()
    }

    /// Longest measured ray in metres (0 for an empty scan).
    pub fn max_ray_length(&self) -> f64 {
        self.cloud
            .iter()
            .map(|p| p.distance(self.origin))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_and_extend() {
        let mut cloud: PointCloud = (0..5).map(|i| Point3::new(i as f64, 0.0, 0.0)).collect();
        assert_eq!(cloud.len(), 5);
        cloud.extend([Point3::splat(1.0)]);
        assert_eq!(cloud.len(), 6);
        assert!(!cloud.is_empty());
    }

    #[test]
    fn empty_cloud() {
        let c = PointCloud::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert!(c.bounding_box().is_empty());
    }

    #[test]
    fn bounding_box_covers_points() {
        let c: PointCloud = [Point3::new(-1.0, 0.0, 2.0), Point3::new(3.0, -2.0, 0.0)]
            .into_iter()
            .collect();
        let b = c.bounding_box();
        assert_eq!(b.min(), Point3::new(-1.0, -2.0, 0.0));
        assert_eq!(b.max(), Point3::new(3.0, 0.0, 2.0));
    }

    #[test]
    fn iteration_both_ways() {
        let c: PointCloud = [Point3::ZERO, Point3::splat(1.0)].into_iter().collect();
        assert_eq!(c.iter().count(), 2);
        assert_eq!((&c).into_iter().count(), 2);
        assert_eq!(c.clone().into_iter().count(), 2);
    }

    #[test]
    fn scan_max_ray_length() {
        let scan = Scan::new(
            Point3::ZERO,
            [Point3::new(3.0, 4.0, 0.0), Point3::new(1.0, 0.0, 0.0)]
                .into_iter()
                .collect(),
        );
        assert_eq!(scan.max_ray_length(), 5.0);
        assert_eq!(scan.len(), 2);
        assert!(Scan::default().is_empty());
        assert_eq!(Scan::default().max_ray_length(), 0.0);
    }
}
