//! The probabilistic occupancy model: log-odds values, the sensor update
//! parameters, and occupancy classification.
//!
//! OctoMap stores the occupancy probability `P(n)` of a voxel `n` as its
//! log-odds `L(n) = log(P / (1 - P))` (eq. 1 of the OMU paper), so a
//! measurement update is a single addition (eq. 2) and the parent policy is
//! a maximum over children (eq. 3). Values are clamped to
//! `[clamp_min, clamp_max]`, which both bounds confidence and makes pruning
//! effective (saturated values become exactly equal).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Converts a probability in `(0, 1)` to log-odds.
///
/// # Examples
///
/// ```
/// use omu_geometry::prob_to_logodds;
/// assert!((prob_to_logodds(0.5)).abs() < 1e-7);
/// assert!(prob_to_logodds(0.7) > 0.0);
/// ```
#[inline]
pub fn prob_to_logodds(p: f64) -> f32 {
    (p / (1.0 - p)).ln() as f32
}

/// Converts a log-odds value back to a probability in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use omu_geometry::{logodds_to_prob, prob_to_logodds};
/// let p = 0.7;
/// assert!((logodds_to_prob(prob_to_logodds(p)) - p).abs() < 1e-6);
/// ```
#[inline]
pub fn logodds_to_prob(l: f32) -> f64 {
    1.0 - 1.0 / (1.0 + (l as f64).exp())
}

/// Occupancy state of a voxel as reported by map queries.
///
/// Mirrors the three query outcomes of the OMU voxel query unit (and the
/// 2-bit child status tags minus the `inner` encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Occupancy {
    /// The voxel has been observed and its occupancy probability is at or
    /// above the occupancy threshold.
    Occupied,
    /// The voxel has been observed and its occupancy probability is below
    /// the occupancy threshold.
    Free,
    /// The voxel has never been observed.
    Unknown,
}

impl fmt::Display for Occupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Occupancy::Occupied => "occupied",
            Occupancy::Free => "free",
            Occupancy::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// A log-odds value representation.
///
/// The software baseline stores log-odds as `f32` (like OctoMap); the OMU
/// accelerator stores them as 16-bit fixed point
/// ([`FixedLogOdds`](crate::FixedLogOdds)). The occupancy octree is generic
/// over this trait so that the same algorithm can be verified bit-for-bit
/// against the accelerator model.
///
/// This trait is sealed against downstream implementations: the equivalence
/// guarantees in `omu-octree` and `omu-core` only hold for the two provided
/// representations.
pub trait LogOdds:
    Copy + PartialEq + PartialOrd + fmt::Debug + Send + Sync + private::Sealed + 'static
{
    /// The log-odds value 0 (probability 0.5).
    const ZERO: Self;

    /// Converts from an `f32` log-odds value (rounding if lossy).
    fn from_f32(l: f32) -> Self;

    /// Converts to an `f32` log-odds value.
    fn to_f32(self) -> f32;

    /// Adds `delta`, saturating at the representation's limits.
    fn add(self, delta: Self) -> Self;

    /// Clamps into `[min, max]`.
    #[inline]
    fn clamp_to(self, min: Self, max: Self) -> Self {
        if self < min {
            min
        } else if self > max {
            max
        } else {
            self
        }
    }

    /// The larger of `a` and `b` (the OctoMap parent occupancy policy).
    #[inline]
    fn max_of(a: Self, b: Self) -> Self {
        if a >= b {
            a
        } else {
            b
        }
    }
}

impl LogOdds for f32 {
    const ZERO: f32 = 0.0;

    #[inline]
    fn from_f32(l: f32) -> f32 {
        l
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    #[inline]
    fn add(self, delta: f32) -> f32 {
        self + delta
    }
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for crate::fixed::FixedLogOdds {}
}

/// Sensor-model parameters of a probabilistic occupancy map.
///
/// The defaults are OctoMap's: `P(hit) = 0.7`, `P(miss) = 0.4`, clamping to
/// probabilities `[0.1192, 0.971]` (log-odds `[-2, 3.5]`) and an occupancy
/// threshold of `P = 0.5` (log-odds 0).
///
/// # Examples
///
/// ```
/// use omu_geometry::OccupancyParams;
///
/// let p = OccupancyParams::default();
/// assert!(p.hit > 0.0 && p.miss < 0.0);
/// assert!(p.clamp_min < p.occupancy_threshold);
/// assert!(p.clamp_max > p.occupancy_threshold);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyParams {
    /// Log-odds added when a voxel is observed occupied (endpoint of a ray).
    pub hit: f32,
    /// Log-odds added when a voxel is observed free (traversed by a ray);
    /// negative.
    pub miss: f32,
    /// Lower clamping bound for stored log-odds.
    pub clamp_min: f32,
    /// Upper clamping bound for stored log-odds.
    pub clamp_max: f32,
    /// Voxels with log-odds at or above this value classify as occupied.
    pub occupancy_threshold: f32,
}

impl Default for OccupancyParams {
    fn default() -> Self {
        OccupancyParams {
            hit: prob_to_logodds(0.7),
            miss: prob_to_logodds(0.4),
            clamp_min: -2.0,
            clamp_max: 3.5,
            occupancy_threshold: 0.0,
        }
    }
}

impl OccupancyParams {
    /// Builds parameters from hit/miss *probabilities* instead of log-odds.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `(0, 1)`, if `p_hit <= 0.5`,
    /// or if `p_miss >= 0.5` — such values would invert the sensor model.
    pub fn from_probabilities(p_hit: f64, p_miss: f64) -> Self {
        assert!(
            p_hit > 0.5 && p_hit < 1.0,
            "p_hit must be in (0.5, 1), got {p_hit}"
        );
        assert!(
            p_miss > 0.0 && p_miss < 0.5,
            "p_miss must be in (0, 0.5), got {p_miss}"
        );
        OccupancyParams {
            hit: prob_to_logodds(p_hit),
            miss: prob_to_logodds(p_miss),
            ..Self::default()
        }
    }

    /// Resolves the parameters into a concrete log-odds representation.
    ///
    /// Quantizing the parameters once (rather than every update) is what
    /// makes the fixed-point accelerator map exactly reproducible on the
    /// quantized software baseline.
    pub fn resolve<V: LogOdds>(&self) -> ResolvedParams<V> {
        ResolvedParams {
            hit: V::from_f32(self.hit),
            miss: V::from_f32(self.miss),
            clamp_min: V::from_f32(self.clamp_min),
            clamp_max: V::from_f32(self.clamp_max),
            occupancy_threshold: V::from_f32(self.occupancy_threshold),
        }
    }

    /// Classifies a raw `f32` log-odds value of an *observed* voxel.
    #[inline]
    pub fn classify(&self, logodds: f32) -> Occupancy {
        if logodds >= self.occupancy_threshold {
            Occupancy::Occupied
        } else {
            Occupancy::Free
        }
    }
}

/// [`OccupancyParams`] converted into a concrete [`LogOdds`] representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedParams<V> {
    /// Log-odds increment for an occupied observation.
    pub hit: V,
    /// Log-odds increment for a free observation.
    pub miss: V,
    /// Lower clamping bound.
    pub clamp_min: V,
    /// Upper clamping bound.
    pub clamp_max: V,
    /// Occupancy classification threshold.
    pub occupancy_threshold: V,
}

impl<V: LogOdds> ResolvedParams<V> {
    /// Applies one measurement update: add and clamp (eq. 2 of the paper).
    #[inline]
    pub fn update(&self, value: V, hit: bool) -> V {
        let delta = if hit { self.hit } else { self.miss };
        value.add(delta).clamp_to(self.clamp_min, self.clamp_max)
    }

    /// Classifies an observed value against the occupancy threshold.
    #[inline]
    pub fn classify(&self, value: V) -> Occupancy {
        if value >= self.occupancy_threshold {
            Occupancy::Occupied
        } else {
            Occupancy::Free
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_logodds_roundtrip() {
        for p in [0.1, 0.3, 0.5, 0.7, 0.9, 0.97] {
            let l = prob_to_logodds(p);
            assert!((logodds_to_prob(l) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn octomap_default_constants() {
        let p = OccupancyParams::default();
        assert!((p.hit - 0.847_297_9).abs() < 1e-5);
        assert!((p.miss + 0.405_465_1).abs() < 1e-5);
        assert_eq!(p.clamp_min, -2.0);
        assert_eq!(p.clamp_max, 3.5);
        assert_eq!(p.occupancy_threshold, 0.0);
    }

    #[test]
    fn from_probabilities_validates() {
        let p = OccupancyParams::from_probabilities(0.7, 0.4);
        assert!((p.hit - OccupancyParams::default().hit).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "p_hit")]
    fn hit_probability_below_half_rejected() {
        let _ = OccupancyParams::from_probabilities(0.4, 0.4);
    }

    #[test]
    #[should_panic(expected = "p_miss")]
    fn miss_probability_above_half_rejected() {
        let _ = OccupancyParams::from_probabilities(0.7, 0.6);
    }

    #[test]
    fn update_clamps_at_bounds() {
        let r = OccupancyParams::default().resolve::<f32>();
        let mut v = 0.0f32;
        for _ in 0..100 {
            v = r.update(v, true);
        }
        assert_eq!(v, 3.5, "saturates at clamp_max");
        for _ in 0..100 {
            v = r.update(v, false);
        }
        assert_eq!(v, -2.0, "saturates at clamp_min");
    }

    #[test]
    fn classify_uses_threshold() {
        let p = OccupancyParams::default();
        assert_eq!(p.classify(0.0), Occupancy::Occupied);
        assert_eq!(p.classify(-0.1), Occupancy::Free);
        let r = p.resolve::<f32>();
        assert_eq!(r.classify(1.0), Occupancy::Occupied);
        assert_eq!(r.classify(-1.0), Occupancy::Free);
    }

    #[test]
    fn max_of_is_commutative_max() {
        assert_eq!(<f32 as LogOdds>::max_of(1.0, 2.0), 2.0);
        assert_eq!(<f32 as LogOdds>::max_of(2.0, 1.0), 2.0);
        assert_eq!(<f32 as LogOdds>::max_of(-1.0, -1.0), -1.0);
    }

    #[test]
    fn occupancy_display() {
        assert_eq!(Occupancy::Occupied.to_string(), "occupied");
        assert_eq!(Occupancy::Free.to_string(), "free");
        assert_eq!(Occupancy::Unknown.to_string(), "unknown");
    }
}
