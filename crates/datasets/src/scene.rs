//! Scene containers: collections of primitives with closest-hit queries.

use omu_geometry::{Aabb, Point3};
use serde::{Deserialize, Serialize};

use crate::primitives::Primitive;

/// An analytic 3D scene: the world the simulated laser scans.
///
/// # Examples
///
/// ```
/// use omu_datasets::{primitives::Primitive, Scene};
/// use omu_geometry::Point3;
///
/// let mut scene = Scene::new();
/// scene.push(Primitive::Ground { height: 0.0 });
/// let hit = scene.closest_hit(Point3::new(0.0, 0.0, 1.0), Point3::new(0.0, 0.0, -1.0));
/// assert!((hit.unwrap() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    primitives: Vec<Primitive>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Scene::default()
    }

    /// Adds a primitive.
    pub fn push(&mut self, p: Primitive) {
        self.primitives.push(p);
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    /// True when the scene has no primitives.
    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    /// The primitives.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// Distance to the closest primitive along `origin + t·dir` (unit
    /// `dir`), or `None` when nothing is hit.
    pub fn closest_hit(&self, origin: Point3, dir: Point3) -> Option<f64> {
        let mut best: Option<f64> = None;
        for p in &self.primitives {
            if let Some(t) = p.intersect(origin, dir) {
                best = Some(match best {
                    Some(b) if b <= t => b,
                    _ => t,
                });
            }
        }
        best
    }

    /// A bounding box covering all bounded primitives (boxes, cylinders,
    /// spheres); `Ground` planes are unbounded and excluded.
    pub fn bounds(&self) -> Aabb {
        let mut b = Aabb::empty();
        for p in &self.primitives {
            match *p {
                Primitive::Box { aabb } => b = b.union(&aabb),
                Primitive::CylinderZ {
                    center,
                    radius,
                    z0,
                    z1,
                } => {
                    b = b.union(&Aabb::new(
                        Point3::new(center.x - radius, center.y - radius, z0),
                        Point3::new(center.x + radius, center.y + radius, z1),
                    ));
                }
                Primitive::Sphere { center, radius } => {
                    b = b.union(&Aabb::new(
                        center - Point3::splat(radius),
                        center + Point3::splat(radius),
                    ));
                }
                Primitive::Ground { .. } => {}
            }
        }
        b
    }
}

impl FromIterator<Primitive> for Scene {
    fn from_iter<I: IntoIterator<Item = Primitive>>(iter: I) -> Self {
        Scene {
            primitives: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_of_two_boxes_wins() {
        let scene: Scene = [
            Primitive::boxed(Point3::new(5.0, -1.0, -1.0), Point3::new(6.0, 1.0, 1.0)),
            Primitive::boxed(Point3::new(2.0, -1.0, -1.0), Point3::new(3.0, 1.0, 1.0)),
        ]
        .into_iter()
        .collect();
        let t = scene
            .closest_hit(Point3::ZERO, Point3::new(1.0, 0.0, 0.0))
            .expect("hit");
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scene_misses() {
        let scene = Scene::new();
        assert!(scene
            .closest_hit(Point3::ZERO, Point3::new(1.0, 0.0, 0.0))
            .is_none());
        assert!(scene.is_empty());
        assert!(scene.bounds().is_empty());
    }

    #[test]
    fn bounds_cover_primitives() {
        let mut scene = Scene::new();
        scene.push(Primitive::boxed(Point3::ZERO, Point3::splat(1.0)));
        scene.push(Primitive::Sphere {
            center: Point3::new(5.0, 0.0, 0.0),
            radius: 2.0,
        });
        scene.push(Primitive::Ground { height: -10.0 });
        let b = scene.bounds();
        assert!(b.contains(Point3::splat(0.5)));
        assert!(b.contains(Point3::new(6.9, 0.0, 0.0)));
        // Ground is unbounded and must not blow up the box.
        assert!(b.min().z >= -2.0 - 1e-12);
    }
}
