//! The New College reproduction: a long outdoor trajectory (tens of
//! thousands of poses) with small, sparse scans — the opposite workload
//! shape to the two Freiburg maps.

use omu_geometry::Point3;

use crate::primitives::Primitive;
use crate::scene::Scene;
use crate::sensor::{LaserScanner, ScanPattern};
use crate::trajectory::Trajectory;

/// Courtyard extents (metres).
const X_HALF: f64 = 22.5;
const Y_HALF: f64 = 17.5;
const WALL_H: f64 = 8.0;
const WALL_T: f64 = 0.5;
/// Laps around the quad; 23 laps of the ~97 m loop ≈ 2.2 km, matching the
/// real dataset's trajectory length, so consecutive scans overlap like the
/// original.
const LAPS: usize = 23;

pub(crate) fn build() -> (Scene, LaserScanner, Trajectory) {
    let mut scene = Scene::new();
    // Sensor frame at z = 0, 1.5 m above the ground: both z half-spaces are
    // observed and all 8 octree branches receive updates.
    const GROUND: f64 = -1.5;
    scene.push(Primitive::Ground { height: GROUND });

    // The quad: four surrounding walls.
    scene.push(Primitive::boxed(
        Point3::new(-X_HALF - WALL_T, -Y_HALF - WALL_T, GROUND),
        Point3::new(X_HALF + WALL_T, -Y_HALF, GROUND + WALL_H),
    ));
    scene.push(Primitive::boxed(
        Point3::new(-X_HALF - WALL_T, Y_HALF, GROUND),
        Point3::new(X_HALF + WALL_T, Y_HALF + WALL_T, GROUND + WALL_H),
    ));
    scene.push(Primitive::boxed(
        Point3::new(-X_HALF - WALL_T, -Y_HALF, GROUND),
        Point3::new(-X_HALF, Y_HALF, GROUND + WALL_H),
    ));
    scene.push(Primitive::boxed(
        Point3::new(X_HALF, -Y_HALF, GROUND),
        Point3::new(X_HALF + WALL_T, Y_HALF, GROUND + WALL_H),
    ));

    // A central monument and a ring of trees.
    scene.push(Primitive::boxed(
        Point3::new(-1.5, -1.5, GROUND),
        Point3::new(1.5, 1.5, GROUND + 3.5),
    ));
    for i in 0..10 {
        let a = std::f64::consts::TAU * i as f64 / 10.0;
        let (x, y) = (9.0 * a.cos(), 7.0 * a.sin());
        scene.push(Primitive::CylinderZ {
            center: Point3::new(x, y, GROUND),
            radius: 0.2,
            z0: GROUND,
            z1: GROUND + 2.2,
        });
        scene.push(Primitive::Sphere {
            center: Point3::new(x, y, GROUND + 3.0),
            radius: 1.2,
        });
    }

    // Sparse forward-facing scans: 26 × 6 = 156 rays — exactly the
    // points/scan of Table II.
    let scanner = LaserScanner::new(
        ScanPattern {
            azimuth_steps: 26,
            elevation_steps: 6,
            azimuth_fov: 90f64.to_radians(),
            elevation_fov: 26f64.to_radians(),
            elevation_center: 0.0,
        },
        35.0,
        0.02,
    );

    // Many laps around the quad at walking height. Each lap runs at a
    // different radius (inner to outer) like the original dataset's
    // wandering path, so coverage spreads instead of re-observing one
    // ring 23 times.
    let lap = [
        Point3::new(-14.0, -10.0, 0.0),
        Point3::new(14.0, -10.0, 0.0),
        Point3::new(16.0, 0.0, 0.0),
        Point3::new(14.0, 10.0, 0.0),
        Point3::new(-14.0, 10.0, 0.0),
        Point3::new(-16.0, 0.0, 0.0),
    ];
    let mut waypoints = Vec::with_capacity(lap.len() * LAPS + 1);
    for k in 0..LAPS {
        let r = 0.50 + 0.50 * k as f64 / (LAPS - 1) as f64;
        waypoints.extend(lap.iter().map(|p| *p * r));
    }
    waypoints.push(lap[0] * 0.50);
    let trajectory = Trajectory::new(waypoints);

    (scene, scanner, trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn college_scans_are_sparse() {
        let (scene, scanner, trajectory) = build();
        assert_eq!(scanner.pattern().rays(), 156);
        let (origin, yaw) = trajectory.poses(100)[50];
        let mut rng = StdRng::seed_from_u64(3);
        let scan = scanner.scan(&scene, origin, yaw, &mut rng);
        assert!(
            scan.len() > 100,
            "most of the 156 rays return: {}",
            scan.len()
        );
        assert!(scan.len() <= 156);
    }

    #[test]
    fn trajectory_is_long_like_the_real_dataset() {
        let (_, _, trajectory) = build();
        let len = trajectory.length();
        assert!(
            len > 1_500.0 && len < 3_000.0,
            "trajectory length {len:.0} m"
        );
    }

    #[test]
    fn poses_stay_inside_the_quad() {
        let (_, _, trajectory) = build();
        for (p, _) in trajectory.poses(500) {
            assert!(
                p.x.abs() < X_HALF && p.y.abs() < Y_HALF,
                "pose {p} inside walls"
            );
        }
    }
}
