//! The FR-079 corridor reproduction: an indoor office corridor scanned by
//! a full-sweep 3D laser from 66 poses.

use omu_geometry::Point3;

use crate::primitives::Primitive;
use crate::scene::Scene;
use crate::sensor::{LaserScanner, ScanPattern};
use crate::trajectory::Trajectory;

/// Corridor length in metres. FR-079 is a full office floor; an 80 m
/// corridor run gives each voxel the handful of observations (not dozens)
/// a real robot pass produces, keeping the saturation profile realistic.
const LENGTH: f64 = 80.0;
/// Corridor half-width in metres.
const HALF_WIDTH: f64 = 1.25;
/// Ceiling height in metres.
const HEIGHT: f64 = 3.0;
/// Wall thickness in metres.
const WALL: f64 = 0.3;
/// Floor height: the sensor rides at z = 0, so the scene spans both z
/// half-spaces and all 8 first-level octree branches receive updates
/// (the property the OMU branch partitioning relies on).
const FLOOR: f64 = -1.5;

pub(crate) fn build() -> (Scene, LaserScanner, Trajectory) {
    let mut scene = Scene::new();

    // Floor and ceiling. The corridor is centred on x (−20..20) so voxel
    // keys spread across both halves of the map — exactly the property the
    // OMU voxel scheduler's first-level branch partitioning relies on.
    let x0 = -LENGTH / 2.0;
    let x1 = LENGTH / 2.0;
    scene.push(Primitive::Ground { height: FLOOR });
    scene.push(Primitive::boxed(
        Point3::new(x0 - WALL, -HALF_WIDTH - 2.5, FLOOR + HEIGHT),
        Point3::new(x1 + WALL, HALF_WIDTH + 2.5, FLOOR + HEIGHT + WALL),
    ));

    // Side walls in segments with door gaps; alcoves (small rooms) behind
    // every gap give the depth variation a real corridor has.
    let segments = 8;
    let seg_len = LENGTH / segments as f64;
    let gap = 1.0;
    for side in [-1.0, 1.0] {
        let y_in = side * HALF_WIDTH;
        let y_out = side * (HALF_WIDTH + WALL);
        for s in 0..segments {
            let sx0 = x0 + s as f64 * seg_len;
            let sx1 = sx0 + seg_len - gap;
            scene.push(Primitive::boxed(
                Point3::new(sx0, y_in.min(y_out), FLOOR),
                Point3::new(sx1, y_in.max(y_out), FLOOR + HEIGHT),
            ));
            // Alcove behind the gap: back wall 2 m behind the corridor wall,
            // with two short side walls.
            let ax0 = sx1;
            let ax1 = sx0 + seg_len;
            let ay_back0 = side * (HALF_WIDTH + 2.0);
            let ay_back1 = side * (HALF_WIDTH + 2.0 + WALL);
            scene.push(Primitive::boxed(
                Point3::new(ax0 - WALL, ay_back0.min(ay_back1), FLOOR),
                Point3::new(ax1 + WALL, ay_back0.max(ay_back1), FLOOR + HEIGHT),
            ));
            for ax in [ax0 - WALL, ax1] {
                scene.push(Primitive::boxed(
                    Point3::new(ax, y_out.min(ay_back0), FLOOR),
                    Point3::new(ax + WALL, y_out.max(ay_back0), FLOOR + HEIGHT),
                ));
            }
        }
    }

    // End caps.
    scene.push(Primitive::boxed(
        Point3::new(x0 - WALL, -HALF_WIDTH - 2.5, FLOOR),
        Point3::new(x0, HALF_WIDTH + 2.5, FLOOR + HEIGHT),
    ));
    scene.push(Primitive::boxed(
        Point3::new(x1, -HALF_WIDTH - 2.5, FLOOR),
        Point3::new(x1 + WALL, HALF_WIDTH + 2.5, FLOOR + HEIGHT),
    ));

    // Cabinets and clutter along the walls: boundary surfaces are where
    // sensor noise keeps flipping voxels between hit and miss, driving the
    // prune/expand churn a real corridor map exhibits.
    for (cx, side) in [
        (-32.0, 1.0),
        (-22.0, -1.0),
        (-12.0, 1.0),
        (-2.0, -1.0),
        (7.0, 1.0),
        (15.0, -1.0),
        (24.0, 1.0),
        (33.0, -1.0),
    ] {
        let y_face = side * (HALF_WIDTH - 0.45);
        let y_wall = side * HALF_WIDTH;
        scene.push(Primitive::boxed(
            Point3::new(cx, y_face.min(y_wall), FLOOR),
            Point3::new(cx + 1.2, y_face.max(y_wall), FLOOR + 1.8),
        ));
    }

    // Full-turn 3D sweep: 420 × 212 = 89 040 rays ≈ the 89 k points/scan of
    // Table II (indoors nearly every ray returns).
    let scanner = LaserScanner::new(
        ScanPattern {
            azimuth_steps: 420,
            elevation_steps: 212,
            azimuth_fov: std::f64::consts::TAU,
            elevation_fov: 100f64.to_radians(),
            elevation_center: 0.0,
        },
        25.0,
        0.03,
    );

    // Straight drive down the middle; the sensor frame is the map
    // origin height (z = 0, 1.5 m above the floor).
    let trajectory = Trajectory::new(vec![
        Point3::new(x0 + 2.0, 0.0, 0.0),
        Point3::new(x1 - 2.0, 0.0, 0.0),
    ]);

    (scene, scanner, trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn corridor_scan_statistics_match_table2() {
        let (scene, scanner, trajectory) = build();
        let (origin, yaw) = trajectory.poses(3)[1];
        let mut rng = StdRng::seed_from_u64(1);
        let scan = scanner.scan(&scene, origin, yaw, &mut rng);
        // Indoors: nearly all of the 89 040 rays return.
        assert!(scan.len() > 80_000, "points per scan = {}", scan.len());
        assert!(scan.len() <= 89_040);
        // Mean ray length is corridor-scale (a few metres).
        let mean: f64 =
            scan.cloud.iter().map(|p| p.distance(origin)).sum::<f64>() / scan.len() as f64;
        assert!(mean > 1.0 && mean < 6.0, "mean ray length {mean:.2} m");
    }

    #[test]
    fn scene_is_centered_on_origin() {
        let (scene, _, _) = build();
        let b = scene.bounds();
        assert!(b.min().x < -15.0 && b.max().x > 15.0);
        assert!((b.center().x).abs() < 1.0);
    }
}
