//! Synthetic stand-ins for the OctoMap 3D scan dataset used by the OMU
//! paper's evaluation.
//!
//! The paper evaluates on three maps from the OctoMap 3D scan dataset
//! (Table II): *FR-079 corridor* (66 scans × ~89 k points), *Freiburg
//! campus* (81 scans × ~248 k points) and *New College* (92 361 scans ×
//! 156 points). The original data is a download we treat as unavailable;
//! per the reproduction's substitution rule this crate regenerates
//! statistically equivalent workloads:
//!
//! - [`Scene`] / [`primitives`] — analytic 3D scenes (boxes, cylinders,
//!   spheres, ground planes) with exact ray intersection.
//! - [`LaserScanner`] — a spherical-grid range sensor with Gaussian range
//!   noise; each pose yields a [`Scan`](omu_geometry::Scan).
//! - [`Trajectory`] — waypoint paths traversed by the simulated robot.
//! - [`DatasetKind`] — the three reproductions, each with a builder that
//!   matches the published scan count, points/scan, and (by scene/range
//!   tuning) the voxel-update volume of Table II.
//!
//! Everything is deterministic given the seed in [`DatasetSpec`]; the
//! `scale` knob shrinks the scan count for CI-sized runs while preserving
//! per-scan statistics.
//!
//! # Examples
//!
//! ```
//! use omu_datasets::DatasetKind;
//!
//! let dataset = DatasetKind::Fr079Corridor.build_scaled(0.01); // 1 % of scans
//! let scans: Vec<_> = dataset.scans().collect();
//! assert_eq!(scans.len(), 1); // ceil(66 * 0.01)
//! assert!(!scans[0].is_empty());
//! ```

mod campus;
mod college;
mod corridor;
pub mod primitives;
mod scene;
mod sensor;
mod spec;
mod trajectory;

pub use scene::Scene;
pub use sensor::{LaserScanner, ScanPattern};
pub use spec::{Dataset, DatasetKind, DatasetSpec, ScanStream};
pub use trajectory::Trajectory;
