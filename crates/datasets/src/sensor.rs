//! The simulated range sensor.

use omu_geometry::{Point3, PointCloud, Scan};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scene::Scene;

/// The angular sampling grid of one scan.
///
/// Azimuth is measured around +z from the robot's heading; elevation from
/// the horizontal plane. A full 3D laser sweep (like the tilting SICK
/// scanners that produced the Freiburg datasets) covers 360° of azimuth and
/// a wide elevation band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanPattern {
    /// Number of azimuth samples.
    pub azimuth_steps: usize,
    /// Number of elevation samples.
    pub elevation_steps: usize,
    /// Total azimuth field of view in radians (2π = full turn).
    pub azimuth_fov: f64,
    /// Total elevation field of view in radians, centred on horizontal.
    pub elevation_fov: f64,
    /// Centre of the elevation band in radians (negative = looking down).
    pub elevation_center: f64,
}

impl ScanPattern {
    /// Rays per scan.
    pub fn rays(&self) -> usize {
        self.azimuth_steps * self.elevation_steps
    }

    /// Iterates the unit direction vectors for a robot heading `yaw`.
    pub fn directions(&self, yaw: f64) -> impl Iterator<Item = Point3> + '_ {
        let az_n = self.azimuth_steps;
        let el_n = self.elevation_steps;
        let az_fov = self.azimuth_fov;
        let el_fov = self.elevation_fov;
        let el_c = self.elevation_center;
        (0..el_n).flat_map(move |ei| {
            (0..az_n).map(move |ai| {
                // Cell-centred sampling avoids duplicate rays at FOV edges
                // (and at the 0/2π seam for full turns).
                let az = yaw - az_fov / 2.0 + az_fov * (ai as f64 + 0.5) / az_n as f64;
                let el = el_c - el_fov / 2.0 + el_fov * (ei as f64 + 0.5) / el_n as f64;
                Point3::new(el.cos() * az.cos(), el.cos() * az.sin(), el.sin())
            })
        })
    }
}

/// A simulated laser scanner: spherical sampling grid, maximum sensing
/// range, and Gaussian range noise.
///
/// # Examples
///
/// ```
/// use omu_datasets::{primitives::Primitive, LaserScanner, ScanPattern, Scene};
/// use omu_geometry::Point3;
/// use rand::SeedableRng;
///
/// let mut scene = Scene::new();
/// scene.push(Primitive::Ground { height: 0.0 });
/// let scanner = LaserScanner::new(
///     ScanPattern {
///         azimuth_steps: 8,
///         elevation_steps: 4,
///         azimuth_fov: std::f64::consts::TAU,
///         elevation_fov: 0.8,
///         elevation_center: -0.5,
///     },
///     30.0,
///     0.0,
/// );
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let scan = scanner.scan(&scene, Point3::new(0.0, 0.0, 1.0), 0.0, &mut rng);
/// assert!(scan.len() > 0, "downward rays hit the ground");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaserScanner {
    pattern: ScanPattern,
    sensor_range: f64,
    noise_sigma: f64,
}

impl LaserScanner {
    /// Creates a scanner.
    ///
    /// `sensor_range` is the maximum distance at which the physical sensor
    /// reports a return (beyond it: no point). `noise_sigma` is the
    /// standard deviation of Gaussian range noise in metres.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty, the range is not positive, or the
    /// noise is negative.
    pub fn new(pattern: ScanPattern, sensor_range: f64, noise_sigma: f64) -> Self {
        assert!(pattern.rays() > 0, "scan pattern must contain rays");
        assert!(sensor_range > 0.0, "sensor range must be positive");
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        LaserScanner {
            pattern,
            sensor_range,
            noise_sigma,
        }
    }

    /// The angular pattern.
    pub fn pattern(&self) -> &ScanPattern {
        &self.pattern
    }

    /// The physical sensing range in metres.
    pub fn sensor_range(&self) -> f64 {
        self.sensor_range
    }

    /// Takes one scan from `origin` with heading `yaw`.
    ///
    /// Rays that hit nothing within the sensor range produce no point
    /// (real lidars report no return), so the cloud size is at most
    /// [`ScanPattern::rays`].
    pub fn scan<R: Rng>(&self, scene: &Scene, origin: Point3, yaw: f64, rng: &mut R) -> Scan {
        let mut cloud = PointCloud::with_capacity(self.pattern.rays());
        for dir in self.pattern.directions(yaw) {
            if let Some(t) = scene.closest_hit(origin, dir) {
                if t <= self.sensor_range {
                    let noisy_t = if self.noise_sigma > 0.0 {
                        (t + gaussian(rng) * self.noise_sigma).max(1e-3)
                    } else {
                        t
                    };
                    cloud.push(origin + dir * noisy_t);
                }
            }
        }
        Scan::new(origin, cloud)
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::Primitive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pattern(az: usize, el: usize) -> ScanPattern {
        ScanPattern {
            azimuth_steps: az,
            elevation_steps: el,
            azimuth_fov: std::f64::consts::TAU,
            elevation_fov: 1.0,
            elevation_center: 0.0,
        }
    }

    #[test]
    fn directions_are_unit_and_counted() {
        let p = pattern(16, 4);
        let dirs: Vec<_> = p.directions(0.3).collect();
        assert_eq!(dirs.len(), 64);
        for d in &dirs {
            assert!((d.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn enclosed_scanner_hits_every_ray() {
        // A box around the origin: every ray hits a wall.
        let scene: Scene = [Primitive::boxed(Point3::splat(-5.0), Point3::splat(5.0))]
            .into_iter()
            .collect();
        let s = LaserScanner::new(pattern(16, 4), 30.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let scan = s.scan(&scene, Point3::ZERO, 0.0, &mut rng);
        assert_eq!(scan.len(), 64);
    }

    #[test]
    fn out_of_range_hits_are_dropped() {
        let scene: Scene = [Primitive::boxed(
            Point3::new(50.0, -100.0, -100.0),
            Point3::new(51.0, 100.0, 100.0),
        )]
        .into_iter()
        .collect();
        let s = LaserScanner::new(pattern(8, 2), 10.0, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let scan = s.scan(&scene, Point3::ZERO, 0.0, &mut rng);
        assert!(scan.len() < 16, "distant wall mostly out of range");
    }

    #[test]
    fn scans_are_deterministic_per_seed() {
        let scene: Scene = [Primitive::boxed(Point3::splat(-5.0), Point3::splat(5.0))]
            .into_iter()
            .collect();
        let s = LaserScanner::new(pattern(8, 4), 30.0, 0.01);
        let a = s.scan(&scene, Point3::ZERO, 0.0, &mut StdRng::seed_from_u64(3));
        let b = s.scan(&scene, Point3::ZERO, 0.0, &mut StdRng::seed_from_u64(3));
        let c = s.scan(&scene, Point3::ZERO, 0.0, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seed, different noise");
    }

    #[test]
    fn noise_perturbs_range_along_ray() {
        let scene: Scene = [Primitive::boxed(Point3::splat(-5.0), Point3::splat(5.0))]
            .into_iter()
            .collect();
        let noisy = LaserScanner::new(pattern(8, 4), 30.0, 0.05);
        let clean = LaserScanner::new(pattern(8, 4), 30.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let a = noisy.scan(&scene, Point3::ZERO, 0.0, &mut rng);
        let b = clean.scan(&scene, Point3::ZERO, 0.0, &mut StdRng::seed_from_u64(3));
        let mut diffs = 0;
        for (pa, pb) in a.cloud.iter().zip(b.cloud.iter()) {
            let d = pa.distance(*pb);
            assert!(d < 0.5, "noise is small");
            if d > 1e-9 {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "noise must actually perturb points");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "sensor range")]
    fn non_positive_range_rejected() {
        let _ = LaserScanner::new(pattern(2, 2), 0.0, 0.0);
    }
}
