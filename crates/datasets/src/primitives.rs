//! Analytic scene primitives with exact ray intersection.

use omu_geometry::{Aabb, Point3};
use serde::{Deserialize, Serialize};

/// A scene primitive the simulated laser can hit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Primitive {
    /// An axis-aligned solid box (walls, buildings, furniture).
    Box {
        /// The box geometry.
        aabb: Aabb,
    },
    /// A vertical cylinder (tree trunks, pillars) spanning `z0..z1`.
    CylinderZ {
        /// Centre of the axis in the XY plane.
        center: Point3,
        /// Radius in metres.
        radius: f64,
        /// Bottom of the cylinder.
        z0: f64,
        /// Top of the cylinder.
        z1: f64,
    },
    /// A sphere (tree canopies).
    Sphere {
        /// Centre.
        center: Point3,
        /// Radius in metres.
        radius: f64,
    },
    /// The ground: a horizontal plane `z = height` hit from above.
    Ground {
        /// Plane height in metres.
        height: f64,
    },
}

impl Primitive {
    /// Distance `t > eps` along `origin + t·dir` (unit `dir`) to the first
    /// intersection, or `None`.
    pub fn intersect(&self, origin: Point3, dir: Point3) -> Option<f64> {
        const EPS: f64 = 1e-9;
        match *self {
            Primitive::Box { aabb } => {
                let (t0, t1) = aabb.intersect_ray(origin, dir)?;
                if t1 < EPS {
                    None
                } else if t0 > EPS {
                    Some(t0)
                } else {
                    // Origin inside the box: first exit.
                    Some(t1)
                }
            }
            Primitive::CylinderZ {
                center,
                radius,
                z0,
                z1,
            } => {
                // Solve in 2D (XY), then clip by z span.
                let ox = origin.x - center.x;
                let oy = origin.y - center.y;
                let a = dir.x * dir.x + dir.y * dir.y;
                if a < 1e-15 {
                    return None; // vertical ray: treat caps as misses
                }
                let b = 2.0 * (ox * dir.x + oy * dir.y);
                let c = ox * ox + oy * oy - radius * radius;
                let disc = b * b - 4.0 * a * c;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                for t in [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)] {
                    if t > EPS {
                        let z = origin.z + t * dir.z;
                        if z >= z0 && z <= z1 {
                            return Some(t);
                        }
                    }
                }
                None
            }
            Primitive::Sphere { center, radius } => {
                let oc = origin - center;
                let b = 2.0 * oc.dot(dir);
                let c = oc.norm_sq() - radius * radius;
                let disc = b * b - 4.0 * c;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                for t in [(-b - sq) / 2.0, (-b + sq) / 2.0] {
                    if t > EPS {
                        return Some(t);
                    }
                }
                None
            }
            Primitive::Ground { height } => {
                if dir.z.abs() < 1e-15 {
                    return None;
                }
                let t = (height - origin.z) / dir.z;
                (t > EPS).then_some(t)
            }
        }
    }

    /// A box primitive from two corners.
    pub fn boxed(a: Point3, b: Point3) -> Primitive {
        Primitive::Box {
            aabb: Aabb::new(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: Point3 = Point3::new(1.0, 0.0, 0.0);

    #[test]
    fn box_hit_from_outside() {
        let p = Primitive::boxed(Point3::new(2.0, -1.0, -1.0), Point3::new(3.0, 1.0, 1.0));
        let t = p.intersect(Point3::ZERO, X).expect("hit");
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_hit_from_inside_returns_exit() {
        let p = Primitive::boxed(Point3::new(-1.0, -1.0, -1.0), Point3::new(1.0, 1.0, 1.0));
        let t = p.intersect(Point3::ZERO, X).expect("exit hit");
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn box_behind_misses() {
        let p = Primitive::boxed(Point3::new(-3.0, -1.0, -1.0), Point3::new(-2.0, 1.0, 1.0));
        assert!(p.intersect(Point3::ZERO, X).is_none());
    }

    #[test]
    fn cylinder_side_hit() {
        let p = Primitive::CylinderZ {
            center: Point3::new(5.0, 0.0, 0.0),
            radius: 1.0,
            z0: -1.0,
            z1: 3.0,
        };
        let t = p.intersect(Point3::ZERO, X).expect("hit");
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cylinder_respects_z_span() {
        let p = Primitive::CylinderZ {
            center: Point3::new(5.0, 0.0, 0.0),
            radius: 1.0,
            z0: 2.0,
            z1: 3.0,
        };
        assert!(p.intersect(Point3::ZERO, X).is_none(), "ray passes below");
        // Vertical rays miss (no caps modeled).
        assert!(p
            .intersect(Point3::new(5.0, 0.0, 0.0), Point3::new(0.0, 0.0, 1.0))
            .is_none());
    }

    #[test]
    fn sphere_hit_both_sides() {
        let p = Primitive::Sphere {
            center: Point3::new(4.0, 0.0, 0.0),
            radius: 1.0,
        };
        let t = p.intersect(Point3::ZERO, X).expect("front hit");
        assert!((t - 3.0).abs() < 1e-12);
        // From inside: exits at radius.
        let t = p
            .intersect(Point3::new(4.0, 0.0, 0.0), X)
            .expect("inside hit");
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_hit_only_when_pointing_at_it() {
        let g = Primitive::Ground { height: 0.0 };
        let down = Point3::new(0.6, 0.0, -0.8);
        let t = g.intersect(Point3::new(0.0, 0.0, 1.6), down).expect("hit");
        assert!((t - 2.0).abs() < 1e-12);
        assert!(
            g.intersect(Point3::new(0.0, 0.0, 1.6), X).is_none(),
            "parallel misses"
        );
        assert!(
            g.intersect(Point3::new(0.0, 0.0, 1.6), Point3::new(0.0, 0.0, 1.0))
                .is_none(),
            "upward misses"
        );
    }
}
