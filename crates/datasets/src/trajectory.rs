//! Robot trajectories: waypoint paths sampled into sensor poses.

use omu_geometry::Point3;
use serde::{Deserialize, Serialize};

/// A piecewise-linear waypoint path.
///
/// Poses are sampled at uniform arc-length spacing; the heading (yaw) at
/// each pose follows the direction of travel.
///
/// # Examples
///
/// ```
/// use omu_datasets::Trajectory;
/// use omu_geometry::Point3;
///
/// let t = Trajectory::new(vec![Point3::ZERO, Point3::new(10.0, 0.0, 0.0)]);
/// let poses = t.poses(3);
/// assert_eq!(poses.len(), 3);
/// assert_eq!(poses[1].0.x, 5.0);
/// assert_eq!(poses[1].1, 0.0); // heading +x
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    waypoints: Vec<Point3>,
}

impl Trajectory {
    /// Creates a trajectory from waypoints.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty.
    pub fn new(waypoints: Vec<Point3>) -> Self {
        assert!(
            !waypoints.is_empty(),
            "a trajectory needs at least one waypoint"
        );
        Trajectory { waypoints }
    }

    /// A closed loop: appends the first waypoint at the end.
    ///
    /// # Panics
    ///
    /// Panics if `waypoints` is empty.
    pub fn closed_loop(mut waypoints: Vec<Point3>) -> Self {
        assert!(
            !waypoints.is_empty(),
            "a trajectory needs at least one waypoint"
        );
        let first = waypoints[0];
        waypoints.push(first);
        Trajectory { waypoints }
    }

    /// The waypoints.
    pub fn waypoints(&self) -> &[Point3] {
        &self.waypoints
    }

    /// Total path length in metres.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Samples `n` poses `(position, yaw)` at uniform arc-length spacing
    /// from start to end (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn poses(&self, n: usize) -> Vec<(Point3, f64)> {
        assert!(n > 0, "cannot sample zero poses");
        let total = self.length();
        if self.waypoints.len() == 1 || total == 0.0 {
            return vec![(self.waypoints[0], 0.0); n];
        }

        // Cumulative segment lengths (running total, so no element access).
        let mut cum = Vec::with_capacity(self.waypoints.len());
        let mut run = 0.0;
        cum.push(run);
        for w in self.waypoints.windows(2) {
            run += w[0].distance(w[1]);
            cum.push(run);
        }

        let mut poses = Vec::with_capacity(n);
        let mut seg = 0usize;
        for i in 0..n {
            let s = if n == 1 {
                0.0
            } else {
                total * i as f64 / (n - 1) as f64
            };
            while seg + 2 < cum.len() && cum[seg + 1] < s {
                seg += 1;
            }
            let a = self.waypoints[seg];
            let b = self.waypoints[seg + 1];
            let seg_len = cum[seg + 1] - cum[seg];
            let t = if seg_len > 0.0 {
                (s - cum[seg]) / seg_len
            } else {
                0.0
            };
            let pos = a.lerp(b, t.clamp(0.0, 1.0));
            let dir = b - a;
            let yaw = dir.y.atan2(dir.x);
            poses.push((pos, yaw));
        }
        poses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_poses_evenly_spaced() {
        let t = Trajectory::new(vec![Point3::ZERO, Point3::new(4.0, 0.0, 0.0)]);
        let p = t.poses(5);
        for (i, (pos, yaw)) in p.iter().enumerate() {
            assert!((pos.x - i as f64).abs() < 1e-12);
            assert_eq!(*yaw, 0.0);
        }
        assert_eq!(t.length(), 4.0);
    }

    #[test]
    fn corner_changes_heading() {
        let t = Trajectory::new(vec![
            Point3::ZERO,
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(2.0, 2.0, 0.0),
        ]);
        let p = t.poses(9);
        assert_eq!(p[0].1, 0.0, "first leg heads +x");
        let last = p.last().unwrap();
        assert!(
            (last.1 - std::f64::consts::FRAC_PI_2).abs() < 1e-9,
            "second leg heads +y"
        );
        assert!((last.0.y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_waypoint_is_stationary() {
        let t = Trajectory::new(vec![Point3::new(1.0, 2.0, 3.0)]);
        let p = t.poses(4);
        assert!(p
            .iter()
            .all(|(pos, yaw)| *pos == Point3::new(1.0, 2.0, 3.0) && *yaw == 0.0));
    }

    #[test]
    fn closed_loop_returns_to_start() {
        let t = Trajectory::closed_loop(vec![
            Point3::ZERO,
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(2.0, 2.0, 0.0),
        ]);
        let p = t.poses(10);
        assert!(p.last().unwrap().0.distance(Point3::ZERO) < 1e-9);
    }

    #[test]
    fn one_pose_is_the_start() {
        let t = Trajectory::new(vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)]);
        let p = t.poses(1);
        assert_eq!(p[0].0, Point3::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_waypoints_rejected() {
        let _ = Trajectory::new(vec![]);
    }
}
