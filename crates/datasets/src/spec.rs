//! Dataset specifications, the paper's reference numbers, and scan
//! streaming.

use omu_geometry::{Point3, Scan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::scene::Scene;
use crate::sensor::LaserScanner;
use crate::trajectory::Trajectory;

/// The three workloads of the paper's evaluation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// FR-079 corridor: indoor, 66 dense scans.
    Fr079Corridor,
    /// Freiburg campus: outdoor, 81 very dense scans.
    FreiburgCampus,
    /// New College: outdoor, 92 361 sparse scans.
    NewCollege,
}

impl DatasetKind {
    /// All three datasets, in the paper's column order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Fr079Corridor,
        DatasetKind::FreiburgCampus,
        DatasetKind::NewCollege,
    ];

    /// The dataset's display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Fr079Corridor => "FR-079 corridor",
            DatasetKind::FreiburgCampus => "Freiburg campus",
            DatasetKind::NewCollege => "New College",
        }
    }

    /// The default generation spec reproducing Table II's workload shape.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            DatasetKind::Fr079Corridor => DatasetSpec {
                kind: *self,
                scans: 66,
                resolution: 0.2,
                max_range: 5.5,
                seed: 0x0F07_9001,
            },
            DatasetKind::FreiburgCampus => DatasetSpec {
                kind: *self,
                scans: 81,
                resolution: 0.2,
                max_range: 15.5,
                seed: 0xCA_4005,
            },
            DatasetKind::NewCollege => DatasetSpec {
                kind: *self,
                scans: 92_361,
                resolution: 0.2,
                max_range: 4.6,
                seed: 0xC0_11E6,
            },
        }
    }

    /// The paper's published reference numbers for this dataset
    /// (Tables II–V), used by the harness to print paper-vs-measured.
    pub fn paper(&self) -> PaperReference {
        match self {
            DatasetKind::Fr079Corridor => PaperReference {
                scan_number: 66,
                avg_points_per_scan: 89_000.0,
                point_cloud_millions: 5.9,
                voxel_update_millions: 101.0,
                i9_latency_s: 16.8,
                i9_fps: 5.23,
                a57_latency_s: 81.7,
                a57_fps: 1.07,
                omu_latency_s: 1.31,
                omu_fps: 63.66,
                a57_energy_j: 227.2,
                omu_energy_j: 0.32,
                fig3_shares: [0.01, 0.23, 0.14, 0.61],
            },
            DatasetKind::FreiburgCampus => PaperReference {
                scan_number: 81,
                avg_points_per_scan: 248_000.0,
                point_cloud_millions: 20.1,
                voxel_update_millions: 1031.0,
                i9_latency_s: 177.7,
                i9_fps: 5.03,
                a57_latency_s: 897.2,
                a57_fps: 1.0,
                omu_latency_s: 14.4,
                omu_fps: 62.05,
                a57_energy_j: 2416.2,
                omu_energy_j: 3.62,
                fig3_shares: [0.01, 0.26, 0.16, 0.57],
            },
            DatasetKind::NewCollege => PaperReference {
                scan_number: 92_361,
                avg_points_per_scan: 156.0,
                point_cloud_millions: 14.5,
                voxel_update_millions: 449.0,
                i9_latency_s: 77.3,
                i9_fps: 5.04,
                a57_latency_s: 401.5,
                a57_fps: 0.97,
                omu_latency_s: 6.5,
                omu_fps: 60.87,
                a57_energy_j: 1147.4,
                omu_energy_j: 1.63,
                fig3_shares: [0.02, 0.34, 0.23, 0.41],
            },
        }
    }

    /// Builds the dataset at full scale.
    pub fn build(&self) -> Dataset {
        self.build_scaled(1.0)
    }

    /// Builds the dataset with the scan count scaled by `scale` (rounded
    /// up, at least one scan). Per-scan statistics are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn build_scaled(&self, scale: f64) -> Dataset {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let mut spec = self.spec();
        spec.scans = ((spec.scans as f64 * scale).ceil() as usize).max(1);
        let (scene, scanner, trajectory) = match self {
            DatasetKind::Fr079Corridor => crate::corridor::build(),
            DatasetKind::FreiburgCampus => crate::campus::build(),
            DatasetKind::NewCollege => crate::college::build(),
        };
        let poses = trajectory.poses(spec.scans);
        Dataset {
            spec,
            scene,
            scanner,
            trajectory,
            poses,
        }
    }
}

/// Generation parameters of one dataset instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub kind: DatasetKind,
    /// Number of scans to generate.
    pub scans: usize,
    /// Map resolution in metres (the paper uses 0.2 m for all maps).
    pub resolution: f64,
    /// Mapping maximum range in metres (OctoMap `maxrange`), the knob that
    /// controls voxel updates per ray.
    pub max_range: f64,
    /// Base RNG seed; scan `i` uses a seed derived from it.
    pub seed: u64,
}

/// Published reference numbers for one dataset (Tables II–V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperReference {
    /// Table II: number of scans.
    pub scan_number: u64,
    /// Table II: average points per scan.
    pub avg_points_per_scan: f64,
    /// Table II: total point cloud size (millions).
    pub point_cloud_millions: f64,
    /// Table II: total voxel updates (millions).
    pub voxel_update_millions: f64,
    /// Table II/III: Intel i9-9940X latency (s).
    pub i9_latency_s: f64,
    /// Table II/IV: Intel i9 throughput (FPS).
    pub i9_fps: f64,
    /// Table III: ARM Cortex-A57 latency (s).
    pub a57_latency_s: f64,
    /// Table IV: ARM Cortex-A57 throughput (FPS).
    pub a57_fps: f64,
    /// Table III: OMU accelerator latency (s).
    pub omu_latency_s: f64,
    /// Table IV: OMU throughput (FPS).
    pub omu_fps: f64,
    /// Table V: Cortex-A57 energy (J).
    pub a57_energy_j: f64,
    /// Table V: OMU energy (J).
    pub omu_energy_j: f64,
    /// Fig. 3: i9 runtime shares
    /// `[ray casting, update leaf, update parents, prune/expand]`.
    pub fig3_shares: [f64; 4],
}

/// A generated dataset: scene + scanner + trajectory + per-scan poses.
#[derive(Debug, Clone)]
pub struct Dataset {
    spec: DatasetSpec,
    scene: Scene,
    scanner: LaserScanner,
    trajectory: Trajectory,
    poses: Vec<(Point3, f64)>,
}

impl Dataset {
    /// The generation spec (including any scaling applied).
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The analytic scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The simulated scanner.
    pub fn scanner(&self) -> &LaserScanner {
        &self.scanner
    }

    /// The robot trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Number of scans this instance will generate.
    pub fn num_scans(&self) -> usize {
        self.spec.scans
    }

    /// Generates scan `index` (deterministic: same index → same scan).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_scans()`.
    pub fn scan(&self, index: usize) -> Scan {
        let (origin, yaw) = self.poses[index];
        let mut rng = StdRng::seed_from_u64(
            self.spec.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.scanner.scan(&self.scene, origin, yaw, &mut rng)
    }

    /// Streams all scans lazily (the campus point cloud alone is ~480 MB if
    /// materialized at once).
    pub fn scans(&self) -> ScanStream<'_> {
        ScanStream {
            dataset: self,
            next: 0,
        }
    }
}

/// Lazy iterator over a dataset's scans. Created by [`Dataset::scans`].
#[derive(Debug)]
pub struct ScanStream<'a> {
    dataset: &'a Dataset,
    next: usize,
}

impl Iterator for ScanStream<'_> {
    type Item = Scan;

    fn next(&mut self) -> Option<Scan> {
        if self.next >= self.dataset.num_scans() {
            return None;
        }
        let scan = self.dataset.scan(self.next);
        self.next += 1;
        Some(scan)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.dataset.num_scans() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ScanStream<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table2_scan_counts() {
        assert_eq!(DatasetKind::Fr079Corridor.spec().scans, 66);
        assert_eq!(DatasetKind::FreiburgCampus.spec().scans, 81);
        assert_eq!(DatasetKind::NewCollege.spec().scans, 92_361);
        for kind in DatasetKind::ALL {
            assert_eq!(kind.spec().resolution, 0.2, "paper uses 0.2 m everywhere");
        }
    }

    #[test]
    fn paper_reference_speedups_are_consistent() {
        for kind in DatasetKind::ALL {
            let p = kind.paper();
            let speedup_i9 = p.i9_latency_s / p.omu_latency_s;
            let speedup_a57 = p.a57_latency_s / p.omu_latency_s;
            assert!(
                speedup_i9 > 11.0 && speedup_i9 < 14.0,
                "{}: {speedup_i9:.1}",
                kind.name()
            );
            assert!(
                speedup_a57 > 60.0 && speedup_a57 < 64.0,
                "{}: {speedup_a57:.1}",
                kind.name()
            );
        }
    }

    #[test]
    fn scaled_build_shrinks_scan_count_only() {
        let d = DatasetKind::Fr079Corridor.build_scaled(0.1);
        assert_eq!(d.num_scans(), 7); // ceil(6.6)
        let s = d.scan(0);
        assert!(s.len() > 50_000, "per-scan density unchanged");
    }

    #[test]
    fn scans_are_deterministic() {
        let d = DatasetKind::Fr079Corridor.build_scaled(0.05);
        let a = d.scan(1);
        let b = d.scan(1);
        assert_eq!(a, b);
        let c = d.scan(2);
        assert_ne!(a, c, "different pose/seed");
    }

    #[test]
    fn stream_yields_all_scans() {
        let d = DatasetKind::NewCollege.build_scaled(0.0001);
        assert_eq!(d.num_scans(), 10); // ceil(9.2361)
        let stream = d.scans();
        assert_eq!(stream.len(), 10);
        assert_eq!(stream.count(), 10);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = DatasetKind::Fr079Corridor.build_scaled(0.0);
    }

    #[test]
    fn origins_within_map_extent_at_paper_resolution() {
        for kind in DatasetKind::ALL {
            let d = kind.build_scaled(0.001);
            let conv = omu_geometry::KeyConverter::new(d.spec().resolution).unwrap();
            for s in d.scans() {
                assert!(
                    conv.coord_to_key(s.origin).is_ok(),
                    "{} origin in map",
                    kind.name()
                );
            }
        }
    }
}
