//! The Freiburg campus reproduction: a large outdoor scene (buildings,
//! trees, ground) scanned by a dense 3D laser from 81 poses.

use omu_geometry::Point3;

use crate::primitives::Primitive;
use crate::scene::Scene;
use crate::sensor::{LaserScanner, ScanPattern};
use crate::trajectory::Trajectory;

pub(crate) fn build() -> (Scene, LaserScanner, Trajectory) {
    let mut scene = Scene::new();
    // The sensor rides at z = 0 (2 m above ground), putting the scene in
    // both z half-spaces so all 8 octree branches receive updates.
    const GROUND: f64 = -2.0;
    scene.push(Primitive::Ground { height: GROUND });

    // Buildings: footprint (x0, y0, x1, y1) and height. The layout is
    // 4-fold rotationally symmetric around the origin so the four XY
    // quadrants (and with them the octree branches) carry equal load.
    let buildings = [
        (-34.0, -30.0, -14.0, -16.0, 14.0),
        (16.0, -34.0, 30.0, -14.0, 16.0),
        (14.0, 16.0, 34.0, 30.0, 14.0),
        (-30.0, 14.0, -16.0, 34.0, 16.0),
        (-6.0, -26.0, 6.0, -18.0, 7.0),
        (18.0, -6.0, 26.0, 6.0, 7.0),
        (-6.0, 18.0, 6.0, 26.0, 7.0),
        (-26.0, -6.0, -18.0, 6.0, 7.0),
    ];
    for &(x0, y0, x1, y1, h) in &buildings {
        scene.push(Primitive::boxed(
            Point3::new(x0, y0, GROUND),
            Point3::new(x1, y1, GROUND + h),
        ));
    }

    // Trees: trunk cylinder + canopy sphere, on a jittered grid that avoids
    // the buildings and the path.
    let mut tree_id = 0u32;
    for gx in -4..=4i32 {
        for gy in -4..=4i32 {
            let x = gx as f64 * 9.0 + ((tree_id * 37) % 3) as f64 - 1.0;
            let y = gy as f64 * 9.0 + ((tree_id * 53) % 3) as f64 - 1.0;
            tree_id += 1;
            let inside_building = buildings.iter().any(|&(x0, y0, x1, y1, _)| {
                x > x0 - 1.0 && x < x1 + 1.0 && y > y0 - 1.0 && y < y1 + 1.0
            });
            let on_path = x.abs() < 4.0 || y.abs() < 4.0;
            if inside_building || on_path {
                continue;
            }
            let c = Point3::new(x, y, GROUND);
            scene.push(Primitive::CylinderZ {
                center: c,
                radius: 0.25,
                z0: GROUND,
                z1: GROUND + 3.4,
            });
            scene.push(Primitive::Sphere {
                center: Point3::new(x, y, GROUND + 4.6),
                radius: 2.0 + ((tree_id % 3) as f64) * 0.4,
            });
        }
    }

    // Dense outdoor sweep: 780 × 345 = 269 100 rays; with ~90 % returning
    // (sky rays miss) this yields ≈ 248 k points/scan as in Table II.
    // The elevation band leans downward: upward rays over the rooftops miss
    // (no return), matching the real dataset's ground-heavy clouds.
    let scanner = LaserScanner::new(
        ScanPattern {
            azimuth_steps: 780,
            elevation_steps: 345,
            azimuth_fov: std::f64::consts::TAU,
            elevation_fov: 55f64.to_radians(),
            elevation_center: 0.0,
        },
        45.0,
        0.015,
    );

    // A diamond loop through the campus paths, visiting all four
    // quadrants evenly so the first-level octree branches stay balanced.
    let trajectory = Trajectory::closed_loop(vec![
        Point3::new(-28.0, 1.0, 0.0),
        Point3::new(-1.0, -28.0, 0.0),
        Point3::new(28.0, -1.0, 0.0),
        Point3::new(1.0, 28.0, 0.0),
    ]);

    (scene, scanner, trajectory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn campus_scan_statistics_match_table2() {
        let (scene, scanner, trajectory) = build();
        let (origin, yaw) = trajectory.poses(5)[2];
        let mut rng = StdRng::seed_from_u64(2);
        let scan = scanner.scan(&scene, origin, yaw, &mut rng);
        // Most rays return (ground band), some skyward rays miss.
        let rays = scanner.pattern().rays();
        assert_eq!(rays, 269_100);
        assert!(scan.len() > 150_000, "points per scan = {}", scan.len());
        // Outdoor rays are longer than corridor rays.
        let mean: f64 =
            scan.cloud.iter().map(|p| p.distance(origin)).sum::<f64>() / scan.len() as f64;
        assert!(mean > 4.0 && mean < 30.0, "mean ray length {mean:.2} m");
    }

    #[test]
    fn scene_spans_the_campus() {
        let (scene, _, _) = build();
        let b = scene.bounds();
        assert!(b.extent().x > 60.0 && b.extent().y > 60.0);
        assert!(
            scene.len() > 30,
            "buildings + trees present: {}",
            scene.len()
        );
    }
}
