//! Crash-safe durability: seeded crash/recovery property tests, the
//! checksum corruption corpus, backpressure, and graceful degradation.
//!
//! The core property: however a durable [`MapService`] dies — torn WAL
//! tail, injected storage faults, a writer killed mid-batch — recovery
//! reconstructs a map **bit-identical to a serial replay of the scan
//! prefix that survived on disk**, and reports exactly what it cut.
//!
//! Runs are seeded; set `OMU_DURABILITY_SEED` (decimal or `0x` hex) to
//! reproduce a failing run. CI re-runs this file in `--release` with
//! the seed pinned, which also raises the seed count.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use omu::geometry::{Point3, PointCloud, Scan};
use omu::map::{
    DurabilityPolicy, DurableDir, FaultKind, FaultPlan, FaultyDir, MapBuilder, MapError,
    MapService, RealDir,
};
use omu::octree::DeserializeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RES: f64 = 0.1;

/// Base seed from `OMU_DURABILITY_SEED` (decimal or `0x` hex), with a
/// fixed default so the suite is deterministic out of the box.
fn base_seed() -> u64 {
    let Ok(raw) = std::env::var("OMU_DURABILITY_SEED") else {
        return 0xCAFE;
    };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    };
    parsed.unwrap_or_else(|| panic!("unparsable OMU_DURABILITY_SEED: {raw:?}"))
}

/// Seeds per property: enough in release CI to sweep fault kinds and
/// positions broadly, few enough in debug to keep `cargo test` quick.
fn seed_count() -> u64 {
    if cfg!(debug_assertions) {
        8
    } else {
        120
    }
}

fn temp_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omu_durability_{tag}_{seed}_{}",
        std::process::id()
    ))
}

/// A seeded scan stream: small clouds around a common origin so maps
/// stay tiny but successive scans keep flipping shared voxels.
fn scans(seed: u64, count: usize) -> Vec<(Point3, Vec<Point3>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let origin = Point3::new(0.01, 0.01, 0.01);
            let points = (0..24)
                .map(|_| {
                    let a = rng.random_range(0.0..std::f64::consts::TAU);
                    let r = rng.random_range(0.5..2.5);
                    Point3::new(r * a.cos(), r * a.sin(), rng.random_range(0.0..0.4))
                })
                .collect();
            (origin, points)
        })
        .collect()
}

/// The ground truth: a serial map fed the first `k` scans directly.
fn serial_replay(
    stream: &[(Point3, Vec<Point3>)],
    k: usize,
) -> Vec<(omu::geometry::VoxelKey, u8, f32)> {
    let mut map = MapBuilder::new(RES).build().unwrap();
    for (origin, points) in &stream[..k] {
        map.insert_points(*origin, points).unwrap();
    }
    map.snapshot()
}

/// Recovers from `dir` and checks the bit-identical-prefix property:
/// the recovered map must equal a serial replay of exactly the batch
/// prefix the recovery checkpoint covers. Returns that prefix length.
fn assert_recovers_to_prefix(dir: &Path, stream: &[(Point3, Vec<Point3>)]) -> usize {
    let (recovered, report) = MapService::recover(dir.to_path_buf(), MapBuilder::new(RES)).unwrap();
    let covered = recovered
        .health()
        .last_checkpoint_seq
        .expect("recovery always folds the result into a checkpoint") as usize;
    assert!(covered <= stream.len(), "recovered more batches than sent");
    if report.checkpoint_epoch.is_none() {
        assert_eq!(covered, report.replayed_batches as usize);
    }
    let leaves = recovered.snapshot().canonical_leaves();
    assert_eq!(
        leaves,
        serial_replay(stream, covered),
        "recovered map is not a serial replay of the surviving {covered}-batch prefix"
    );
    recovered.shutdown().unwrap();
    covered
}

/// Property, torn-tail variant: run a durable service to clean
/// shutdown, then tear the newest WAL segment at a random byte — the
/// shape a power cut leaves — and recover.
#[test]
fn recovery_matches_serial_replay_after_torn_wal_tail() {
    let base = base_seed();
    for i in 0..seed_count() {
        let seed = base.wrapping_add(i);
        let dir = temp_dir("torn", seed);
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70_52_4E);
        let stream = scans(seed, rng.random_range(4..12));
        let every = rng.random_range(2..5);
        let service = MapService::spawn(
            MapBuilder::new(RES).durability(&dir, DurabilityPolicy::EveryNEpochs(every)),
        )
        .unwrap();
        for (origin, points) in &stream {
            service.ingest_points(*origin, points.clone()).unwrap();
            // One flush per scan pins one batch per scan: batch seq i
            // is exactly scan i, which the prefix check relies on.
            service.flush().unwrap();
        }
        service.shutdown().unwrap();

        // Tear the newest segment at a random offset.
        let mut wals: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with("wal-"))
            .collect();
        wals.sort();
        if let Some(newest) = wals.last() {
            let path = dir.join(newest);
            let bytes = std::fs::read(&path).unwrap();
            if !bytes.is_empty() {
                let cut = rng.random_range(0..bytes.len());
                std::fs::write(&path, &bytes[..cut]).unwrap();
            }
        }

        assert_recovers_to_prefix(&dir, &stream);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Property, fault-plan variant: a seeded fault (error, short write, or
/// thread-killing panic) fires at a seeded storage operation while the
/// service runs. Whatever it did, recovery lands on a clean prefix.
#[test]
fn recovery_matches_serial_replay_under_seeded_faults() {
    let base = base_seed();
    for i in 0..seed_count() {
        let seed = base.wrapping_add(i).wrapping_mul(0x9E37_79B9);
        let dir = temp_dir("fault", seed);
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_17);
        let stream = scans(seed, rng.random_range(6..14));
        let plan = FaultPlan::seeded(seed, 24);
        let service = MapService::spawn(
            MapBuilder::new(RES)
                .durability(&dir, DurabilityPolicy::EveryNEpochs(rng.random_range(2..4)))
                .fault_plan(plan),
        )
        .unwrap();
        for (origin, points) in &stream {
            // The injected fault may have killed the writer; ingest and
            // flush results stop mattering once it has.
            let _ = service.ingest_points(*origin, points.clone());
            let _ = service.flush();
        }
        // An injected Panic kills the durable thread, never the writer:
        // storage faults degrade serving, they don't stop it.
        assert!(!service.is_shut_down(), "a storage fault killed the writer");
        drop(service);

        assert_recovers_to_prefix(&dir, &stream);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Corruption corpus: every single-bit flip of every byte of a
/// checkpoint blob must be rejected as `ChecksumMismatch` — never
/// decoded into a silently different map, never a panic.
#[test]
fn every_bit_flip_of_a_checkpoint_is_a_checksum_mismatch() {
    let dir = temp_dir("corpus", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let stream = scans(7, 2);
    let service =
        MapService::spawn(MapBuilder::new(RES).durability(&dir, DurabilityPolicy::Manual)).unwrap();
    for (origin, points) in &stream {
        service.ingest_points(*origin, points.clone()).unwrap();
    }
    service.flush().unwrap();
    service.checkpoint().unwrap();
    service.shutdown().unwrap();

    let store = RealDir::create(&dir).unwrap();
    let ckpt = store
        .list()
        .unwrap()
        .into_iter()
        .find(|n| n.starts_with("ckpt-"))
        .expect("manual checkpoint produced a blob");
    let bytes = store.read(&ckpt).unwrap();
    // Sanity: the pristine blob decodes and matches the live map.
    let restored = omu::map::OccupancyMap::from_bytes(&bytes).unwrap();
    assert_eq!(restored.snapshot(), serial_replay(&stream, 2));

    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutant = bytes.clone();
            mutant[pos] ^= 1 << bit;
            match omu::map::OccupancyMap::from_bytes(&mutant) {
                Err(MapError::Decode(DeserializeError::ChecksumMismatch)) => {}
                other => panic!(
                    "flip of bit {bit} at byte {pos}/{} was not a checksum mismatch: {:?}",
                    bytes.len(),
                    other.map(|_| "decoded fine")
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bounded ingest queue pushes back with a typed error instead of
/// blocking or dropping silently, and drains back to healthy.
#[test]
fn bounded_queue_reports_typed_backpressure() {
    let service = MapService::spawn(MapBuilder::new(RES).queue_capacity(2)).unwrap();
    let release = service.debug_stall_writer().unwrap();
    let burst = scans(3, 1).remove(0);
    // The writer is parked; the queue holds exactly `capacity` scans.
    let mut rejected = 0;
    for _ in 0..8 {
        match service.ingest(Scan::new(
            burst.0,
            burst.1.iter().copied().collect::<PointCloud>(),
        )) {
            Ok(()) => {}
            Err(MapError::Backpressure { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("expected backpressure, got {other:?}"),
        }
    }
    assert!(rejected >= 6, "queue never filled: {rejected}/8 rejected");
    drop(release); // un-park the writer
    service.flush().unwrap();
    // Drained: ingestion works again.
    service.ingest_points(burst.0, burst.1.clone()).unwrap();
    let snap = service.flush().unwrap();
    assert!(!snap.is_empty());
    service.shutdown().unwrap();
}

/// A failing checkpoint degrades the service — typed error on the
/// explicit call, health flag set — while serving and ingestion keep
/// working, and a later checkpoint heals it.
#[test]
fn failed_checkpoint_degrades_to_serving_and_heals() {
    let dir = temp_dir("degrade", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let real: Arc<dyn DurableDir> = Arc::new(RealDir::create(&dir).unwrap());
    // Ops: append(0) + sync(1) for the first batch, write_atomic(2) for
    // the first checkpoint — which is the one that fails.
    let faulty: Arc<dyn DurableDir> = Arc::new(FaultyDir::new(
        Arc::clone(&real),
        FaultPlan::new().fail_at(2, FaultKind::Error),
    ));
    let service =
        MapService::spawn(MapBuilder::new(RES).durability_store(faulty, DurabilityPolicy::Manual))
            .unwrap();
    let stream = scans(11, 3);
    service
        .ingest_points(stream[0].0, stream[0].1.clone())
        .unwrap();
    service.flush().unwrap();
    let e = service.checkpoint().unwrap_err();
    assert!(matches!(e, MapError::Io(_)), "expected Io, got {e:?}");
    let health = service.health();
    assert!(!health.is_healthy());
    assert!(health.checkpoint_failed.is_some());
    assert_eq!(health.last_checkpoint_seq, None);

    // Degraded, not dead: serving and ingestion continue.
    service
        .ingest_points(stream[1].0, stream[1].1.clone())
        .unwrap();
    let snap = service.flush().unwrap();
    assert_eq!(snap.canonical_leaves(), serial_replay(&stream, 2));

    // The next checkpoint heals the health flag.
    service.checkpoint().unwrap();
    let health = service.health();
    assert!(health.is_healthy(), "still degraded: {health:?}");
    assert_eq!(health.last_checkpoint_seq, Some(2));
    service.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovery report accounts for exactly what was restored: the
/// checkpoint it started from, the WAL batches replayed on top, and
/// whether a tail was cut.
#[test]
fn recovery_report_accounts_for_checkpoint_and_replay() {
    let dir = temp_dir("report", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let stream = scans(42, 5);
    let service =
        MapService::spawn(MapBuilder::new(RES).durability(&dir, DurabilityPolicy::Manual)).unwrap();
    for (origin, points) in &stream[..3] {
        service.ingest_points(*origin, points.clone()).unwrap();
        service.flush().unwrap();
    }
    service.checkpoint().unwrap();
    assert_eq!(service.health().last_checkpoint_seq, Some(3));
    for (origin, points) in &stream[3..] {
        service.ingest_points(*origin, points.clone()).unwrap();
        service.flush().unwrap();
    }
    service.shutdown().unwrap();

    let (recovered, report) = MapService::recover(dir.clone(), MapBuilder::new(RES)).unwrap();
    assert!(report.checkpoint_epoch.is_some());
    assert_eq!(report.replayed_batches, 2, "{report:?}");
    assert!(!report.truncated_tail, "{report:?}");
    assert_eq!(
        recovered.snapshot().canonical_leaves(),
        serial_replay(&stream, 5)
    );
    // Recovery folded everything into a fresh checkpoint.
    assert_eq!(recovered.health().last_checkpoint_seq, Some(5));
    recovered.shutdown().unwrap();

    // Recovering *again* (a crash loop) loses no ground and replays
    // nothing: the recovery checkpoint covers it all.
    let (again, report) = MapService::recover(dir.clone(), MapBuilder::new(RES)).unwrap();
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(
        again.snapshot().canonical_leaves(),
        serial_replay(&stream, 5)
    );
    again.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer panic is captured as a typed error — retrievable from the
/// live handle, never swallowed by `Drop`'s join.
#[test]
fn writer_panic_surfaces_typed_not_swallowed() {
    let service = MapService::spawn(MapBuilder::new(RES)).unwrap();
    service.debug_panic_writer().unwrap();
    // The next round trip fails: the writer is gone mid-unwind.
    assert!(service.flush().is_err());
    // The flush ack can drop mid-unwind, before the panic is recorded;
    // `is_shut_down` and the typed error are set under one lock, so
    // once the flag reads true the error is there.
    while !service.is_shut_down() {
        std::thread::yield_now();
    }
    let e = service.take_writer_error();
    assert!(
        matches!(e, Some(MapError::WorkerPanicked(_))),
        "expected a typed panic, got {e:?}"
    );
    assert!(service.is_shut_down());
    // Taken is taken: a second read is empty.
    assert!(service.take_writer_error().is_none());

    // And the un-taken path: `shutdown` itself reports the panic.
    let service = MapService::spawn(MapBuilder::new(RES)).unwrap();
    service.debug_panic_writer().unwrap();
    let _ = service.flush();
    let e = service.shutdown().unwrap_err();
    assert!(
        matches!(e, MapError::WorkerPanicked(_)),
        "shutdown swallowed the panic: {e:?}"
    );
}

/// Spawning fresh into a directory that already holds durable state is
/// refused — it would silently shadow the recoverable map.
#[test]
fn spawn_refuses_nonempty_durability_directory() {
    let dir = temp_dir("nonempty", 0);
    let _ = std::fs::remove_dir_all(&dir);
    let stream = scans(5, 1);
    let service =
        MapService::spawn(MapBuilder::new(RES).durability(&dir, DurabilityPolicy::Manual)).unwrap();
    service
        .ingest_points(stream[0].0, stream[0].1.clone())
        .unwrap();
    service.flush().unwrap();
    service.shutdown().unwrap();

    let e = MapService::spawn(MapBuilder::new(RES).durability(&dir, DurabilityPolicy::Manual))
        .unwrap_err();
    assert!(
        e.to_string().contains("MapService::recover"),
        "unhelpful refusal: {e}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
