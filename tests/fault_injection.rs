//! Fault injection: the equivalence checker must detect soft errors in
//! the accelerator's T-Mem.
//!
//! This doubles as a sensitivity check on `omu_core::verify` — a checker
//! that "always passes" would be worthless, so we prove it catches a
//! single flipped bit.
//!
//! Row placement is deterministic for a fresh single-path map: the PE
//! allocates rows 1..=15 while descending to depth 16, so the leaf entry
//! lives in row 15 at bank `child_index_at(15)`, and its parent (depth-15
//! node) in row 14 at bank `child_index_at(14)`.

use omu::accel::{verify, OmuAccelerator, OmuConfig};
use omu::geometry::{Occupancy, Point3};

fn build_single_path() -> (
    omu::octree::OctreeFixed,
    OmuAccelerator,
    omu::geometry::VoxelKey,
) {
    let config = OmuConfig::default();
    let mut tree = verify::baseline_for(&config);
    let mut omu = OmuAccelerator::new(config).unwrap();
    let p = Point3::new(1.23, 2.34, 0.45);
    let key = omu.converter().coord_to_key(p).unwrap();
    omu.update_voxel(key, true).unwrap();
    tree.update_key(key, true);
    (tree, omu, key)
}

#[test]
fn clean_run_is_equivalent_then_leaf_flip_breaks_it() {
    let (tree, mut omu, key) = build_single_path();
    verify::check_equivalence(&tree, &omu).expect("clean maps are bit-identical");

    // Flip a probability bit of the leaf entry (prob is bits [15:0]).
    let pe = key.first_level_branch().index();
    let leaf_bank = key.child_index_at(15).index();
    omu.inject_bit_flip(pe, 15, leaf_bank, 9);

    let report = verify::check_equivalence(&tree, &omu)
        .expect_err("a flipped probability bit must surface as a divergence");
    assert!(
        report.value_mismatches > 0,
        "report must localize the fault: {report}"
    );
}

#[test]
fn tag_flip_materializes_phantom_leaf() {
    let (tree, mut omu, key) = build_single_path();

    // In the depth-15 node (row 14), flip the low tag bit of a *sibling*
    // slot of the real leaf: Unknown (00) becomes Occupied (01), so a
    // phantom leaf appears in the accelerator's map.
    let pe = key.first_level_branch().index();
    let parent_bank = key.child_index_at(14).index();
    let real_pos = key.child_index_at(15).index();
    let phantom_pos = real_pos ^ 1;
    omu.inject_bit_flip(pe, 14, parent_bank, 16 + 2 * phantom_pos as u32);

    let report = verify::check_equivalence(&tree, &omu)
        .expect_err("a phantom child must surface as a divergence");
    assert!(
        report.only_accelerator > 0,
        "the phantom leaf exists only on the accelerator: {report}"
    );
}

#[test]
fn double_flip_restores_equivalence() {
    let (tree, mut omu, key) = build_single_path();
    let pe = key.first_level_branch().index();
    let leaf_bank = key.child_index_at(15).index();
    omu.inject_bit_flip(pe, 15, leaf_bank, 5);
    omu.inject_bit_flip(pe, 15, leaf_bank, 5);
    verify::check_equivalence(&tree, &omu).expect("double flip restores the bit");
}

#[test]
fn corrupted_probability_changes_queries() {
    let (_, mut omu, key) = build_single_path();
    assert_eq!(omu.query_key(key), Occupancy::Occupied);
    // Flip the sign bit of the leaf probability: occupied becomes free.
    let pe = key.first_level_branch().index();
    let leaf_bank = key.child_index_at(15).index();
    omu.inject_bit_flip(pe, 15, leaf_bank, 15);
    assert_eq!(
        omu.query_key(key),
        Occupancy::Free,
        "sign flip inverts classification"
    );
}
