//! Cross-crate equivalence: the accelerator's map must be bit-identical
//! to the software octree running the same algorithm on the same 16-bit
//! fixed point, for real dataset workloads — the reproduction's version
//! of the paper's "zero loss from the floating-point maps" claim.

use omu::accel::{verify, OmuAccelerator, OmuConfig, UpdateEngine};
use omu::datasets::DatasetKind;
use omu::geometry::{Occupancy, Point3, PointCloud, Scan};
use omu::octree::{OccupancyOctree, OctreeF32, OctreeFixed};
use omu::raycast::IntegrationMode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn config_for(kind: DatasetKind) -> OmuConfig {
    let spec = kind.spec();
    OmuConfig::builder()
        .rows_per_bank(1 << 15)
        .resolution(spec.resolution)
        .max_range(Some(spec.max_range))
        .build()
        .unwrap()
}

fn assert_dataset_equivalence(kind: DatasetKind, scale: f64) {
    let dataset = kind.build_scaled(scale);
    let config = config_for(kind);
    let mut tree = verify::baseline_for(&config);
    let mut omu = OmuAccelerator::new(config).unwrap();
    for scan in dataset.scans() {
        tree.insert_scan(&scan).unwrap();
        omu.integrate_scan(&scan).unwrap();
    }
    let leaves = verify::check_equivalence(&tree, &omu)
        .unwrap_or_else(|m| panic!("{} maps diverged:\n{m}", kind.name()));
    assert!(
        leaves > 1_000,
        "{}: non-trivial map ({leaves} leaves)",
        kind.name()
    );
}

#[test]
fn corridor_map_bit_identical() {
    assert_dataset_equivalence(DatasetKind::Fr079Corridor, 0.016); // 2 scans
}

#[test]
fn college_map_bit_identical() {
    assert_dataset_equivalence(DatasetKind::NewCollege, 0.002); // 185 scans
}

#[test]
fn random_hammering_stays_equivalent() {
    // Dense random updates in a small region force heavy prune/expand
    // churn — the hardest case for the packed-entry state machine.
    let config = OmuConfig::builder().resolution(0.1).build().unwrap();
    let mut tree = verify::baseline_for(&config);
    let mut omu = OmuAccelerator::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..60 {
        let origin = Point3::new(
            rng.random_range(-0.4..0.4),
            rng.random_range(-0.4..0.4),
            rng.random_range(-0.4..0.4),
        );
        let cloud: PointCloud = (0..50)
            .map(|_| {
                Point3::new(
                    rng.random_range(-1.6..1.6),
                    rng.random_range(-1.6..1.6),
                    rng.random_range(-1.6..1.6),
                )
            })
            .collect();
        let scan = Scan::new(origin, cloud);
        tree.insert_scan(&scan).unwrap();
        omu.integrate_scan(&scan).unwrap();
    }
    verify::check_equivalence(&tree, &omu).unwrap_or_else(|m| panic!("diverged:\n{m}"));
}

#[test]
fn fixed_point_classification_matches_float() {
    // The fixed-point map classifies every observed voxel identically to
    // the float map under the default thresholds.
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
    let spec = *dataset.spec();
    let mut f32_tree = OctreeF32::new(spec.resolution).unwrap();
    let mut fix_tree = OctreeFixed::new(spec.resolution).unwrap();
    f32_tree.set_max_range(Some(spec.max_range));
    fix_tree.set_max_range(Some(spec.max_range));
    for scan in dataset.scans() {
        f32_tree.insert_scan(&scan).unwrap();
        fix_tree.insert_scan(&scan).unwrap();
    }
    let mut checked = 0u64;
    let mut disagreements = 0u64;
    for leaf in f32_tree.iter_leaves() {
        if leaf.depth == omu::geometry::TREE_DEPTH {
            checked += 1;
            if fix_tree.occupancy(leaf.key) != leaf.occupancy {
                disagreements += 1;
            }
        }
    }
    // Saturated regions prune to coarser depths; the finest-depth leaves
    // that remain are the boundary cells.
    assert!(checked > 1_000, "checked {checked} finest voxels");
    // Q5.10 quantization can flip a voxel whose float log-odds sits within
    // half an LSB (~0.0005) of the occupancy threshold — e.g. 2 hits + 4
    // misses is −0.0047 in float but +0.074 quantized. Such knife-edge
    // voxels are a vanishing fraction of the map.
    let rate = disagreements as f64 / checked as f64;
    assert!(
        rate < 1e-3,
        "{disagreements} of {checked} voxels ({rate:.5}) classify differently"
    );
    // The coarse structure agrees too.
    assert_eq!(
        f32_tree.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap(),
        fix_tree.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap()
    );
}

fn random_scans(seed: u64, scans: usize, points: usize) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..scans)
        .map(|_| {
            let origin = Point3::new(
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.3..0.3),
            );
            let cloud: PointCloud = (0..points)
                .map(|_| {
                    Point3::new(
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-1.5..1.5),
                    )
                })
                .collect();
            Scan::new(origin, cloud)
        })
        .collect()
}

/// Inserts `scans` three ways — scalar per-update path, Morton-batched
/// path, parallel-sharded batched path — and demands bit-identical trees.
fn assert_batch_equivalence<V: omu::geometry::LogOdds>(
    scans: &[Scan],
    pruning: bool,
    mode: IntegrationMode,
    resolution: f64,
) {
    let make = || {
        let mut t: OccupancyOctree<V> = OccupancyOctree::new(resolution).unwrap();
        t.set_pruning_enabled(pruning);
        t.set_integration_mode(mode);
        t.set_max_range(Some(6.0));
        t.set_change_detection(true);
        t
    };
    let mut scalar = make();
    let mut batched = make();
    let mut parallel = make();
    for scan in scans {
        let a = scalar.insert_scan(scan).unwrap();
        let b = batched.insert_scan_batched(scan).unwrap();
        let c = parallel.insert_scan_parallel(scan, 3).unwrap();
        assert_eq!(a.total_updates(), b.total_updates());
        assert_eq!(a.total_updates(), c.total_updates());
    }
    assert_eq!(
        scalar.snapshot(),
        batched.snapshot(),
        "batched diverged (pruning={pruning}, mode={mode:?})"
    );
    assert_eq!(
        scalar.snapshot(),
        parallel.snapshot(),
        "parallel diverged (pruning={pruning}, mode={mode:?})"
    );
    assert_eq!(scalar.num_nodes(), batched.num_nodes());
    // Change detection agrees as a set.
    let canon = |t: &OccupancyOctree<V>| {
        let mut v: Vec<_> = t.changed_keys().copied().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(canon(&scalar), canon(&batched));
    assert_eq!(canon(&scalar), canon(&parallel));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The batch engine's contract: for random workloads, every
    // combination of pruning flag and integration mode produces a tree
    // bit-identical to the scalar `update_key` path, in both value
    // representations.
    #[test]
    fn batched_paths_are_bit_identical_to_scalar(
        seed in any::<u64>(),
        nscans in 2usize..5,
        points in 20usize..60,
    ) {
        let scans = random_scans(seed, nscans, points);
        for pruning in [true, false] {
            for mode in [IntegrationMode::Raywise, IntegrationMode::DedupPerScan] {
                assert_batch_equivalence::<f32>(&scans, pruning, mode, 0.1);
                assert_batch_equivalence::<omu::geometry::FixedLogOdds>(
                    &scans, pruning, mode, 0.1,
                );
            }
        }
    }
}

/// Inserts `scans` through the scalar per-update path and through the
/// subtree-sharded end-to-end pipeline (`ScanPipeline` front end +
/// `apply_update_batch_parallel`) at a given shard count, and demands
/// bit-identical trees.
fn assert_sharded_equivalence<V: omu::geometry::LogOdds>(
    scans: &[Scan],
    pruning: bool,
    mode: IntegrationMode,
    shards: usize,
    resolution: f64,
) {
    let make = || {
        let mut t: OccupancyOctree<V> = OccupancyOctree::new(resolution).unwrap();
        t.set_pruning_enabled(pruning);
        t.set_integration_mode(mode);
        t.set_max_range(Some(6.0));
        t.set_change_detection(true);
        t
    };
    let mut scalar = make();
    let mut sharded = make();
    for scan in scans {
        let a = scalar.insert_scan(scan).unwrap();
        let b = sharded.insert_scan_parallel(scan, shards).unwrap();
        assert_eq!(a.total_updates(), b.total_updates());
    }
    assert_eq!(
        scalar.snapshot(),
        sharded.snapshot(),
        "sharded apply diverged (pruning={pruning}, mode={mode:?}, shards={shards})"
    );
    assert_eq!(scalar.num_nodes(), sharded.num_nodes());
    let canon = |t: &OccupancyOctree<V>| {
        let mut v: Vec<_> = t.changed_keys().copied().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(canon(&scalar), canon(&sharded));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The sharded parallel engine's contract: bit-identical to scalar
    // `update_key` across pruning on/off, both integration modes, and
    // 1/2/4/8 worker shards, in both value representations. The random
    // scans cross the map origin, so their update batches straddle
    // first-level branch boundaries (all 8 octants receive work).
    #[test]
    fn sharded_parallel_is_bit_identical_to_scalar(
        seed in any::<u64>(),
        nscans in 2usize..4,
        points in 20usize..50,
    ) {
        let scans = random_scans(seed, nscans, points);
        // Sweep shard counts deterministically from the seed so every
        // failure reproduces from the proptest case alone.
        let shards = [1usize, 2, 4, 8][(seed % 4) as usize];
        for pruning in [true, false] {
            for mode in [IntegrationMode::Raywise, IntegrationMode::DedupPerScan] {
                assert_sharded_equivalence::<f32>(&scans, pruning, mode, shards, 0.1);
                assert_sharded_equivalence::<omu::geometry::FixedLogOdds>(
                    &scans, pruning, mode, shards, 0.1,
                );
            }
        }
    }
}

#[test]
fn sharded_parallel_spawns_threads_above_the_amortization_threshold() {
    // Small batches take the inline fast path; this one is large enough
    // (> 1024 unique keys across several branches) that the sharded
    // engine really spawns `thread::scope` workers — keeping actual
    // multi-threaded execution covered by the bit-identity suite.
    use omu::raycast::VoxelUpdate;
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let updates: Vec<VoxelUpdate> = (0..6000)
        .map(|_| VoxelUpdate {
            key: omu::geometry::VoxelKey::new(
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
            ),
            hit: rng.random_range(0..4) != 0,
        })
        .collect();

    let mut sequential = OctreeF32::new(0.1).unwrap();
    sequential.set_change_detection(true);
    sequential.apply_update_batch(&updates);
    for shards in [2, 4, 8] {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_change_detection(true);
        t.apply_update_batch_parallel(&updates, shards);
        assert_eq!(sequential.snapshot(), t.snapshot(), "shards={shards}");
        assert_eq!(sequential.counters(), t.counters(), "shards={shards}");
        let canon = |t: &OctreeF32| {
            let mut v: Vec<_> = t.changed_keys().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(canon(&sequential), canon(&t));
        t.debug_validate();
    }

    // The read side as well: batches above the query threshold fan out
    // over real worker threads and must stay bit-identical.
    let keys: Vec<omu::geometry::VoxelKey> = (0..5000)
        .map(|_| {
            omu::geometry::VoxelKey::new(
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
            )
        })
        .collect();
    let expected = sequential.query_batch(&keys).to_vec();
    for shards in [2, 8] {
        let got = sequential.query_batch_parallel(&keys, shards).to_vec();
        assert_eq!(got, expected, "query shards={shards}");
    }
    let rays: Vec<(Point3, Point3)> = (0..64)
        .map(|i| {
            let a = i as f64 * 0.1;
            (Point3::ZERO, Point3::new(a.cos(), a.sin(), 0.1))
        })
        .collect();
    let one_by_one: Vec<_> = rays
        .iter()
        .map(|&(o, d)| sequential.cast_ray(o, d, 4.0, true).unwrap())
        .collect();
    let batched = sequential.cast_rays(&rays, 4.0, true, 4).unwrap();
    assert_eq!(batched, one_by_one);
}

#[test]
fn sharded_parallel_handles_single_branch_batches() {
    // Every point (and the origin) in the strictly positive octant:
    // every voxel key has its top bit set on all axes, so the whole
    // batch lands in first-level branch 7 — the degenerate one-run case
    // for the sharded walk, at every shard count.
    let mut rng = StdRng::seed_from_u64(41);
    let scans: Vec<Scan> = (0..3)
        .map(|_| {
            let origin = Point3::new(
                rng.random_range(0.1..0.4),
                rng.random_range(0.1..0.4),
                rng.random_range(0.1..0.4),
            );
            let cloud: PointCloud = (0..40)
                .map(|_| {
                    Point3::new(
                        rng.random_range(0.5..4.0),
                        rng.random_range(0.5..4.0),
                        rng.random_range(0.5..4.0),
                    )
                })
                .collect();
            Scan::new(origin, cloud)
        })
        .collect();
    for shards in [1, 2, 4, 8] {
        assert_sharded_equivalence::<f32>(&scans, true, IntegrationMode::Raywise, shards, 0.1);
    }
}

#[test]
fn sharded_parallel_handles_branch_straddling_batches() {
    // Rays fanning out from the exact map origin cross into every
    // octant, so each scan's batch splits into runs for all 8 branches.
    let points: Vec<Point3> = (0..64)
        .map(|i| {
            let a = i as f64 * 0.098;
            let z = ((i % 9) as f64 - 4.0) * 0.5;
            Point3::new(3.0 * a.cos(), 3.0 * a.sin(), z)
        })
        .collect();
    let scans = vec![
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            points.iter().copied().collect::<PointCloud>(),
        ),
        Scan::new(
            Point3::new(-0.01, -0.01, -0.01),
            points.into_iter().collect::<PointCloud>(),
        ),
    ];
    for shards in [1, 2, 4, 8] {
        for pruning in [true, false] {
            assert_sharded_equivalence::<f32>(
                &scans,
                pruning,
                IntegrationMode::Raywise,
                shards,
                0.1,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Persistence under the parallel engines: a map built through
    // `Engine::Sharded` round-trips through `to_bytes`/`from_bytes` and
    // `save_to_file`/`load_from_file` bit-identical to the scalar-built
    // equivalent — serialization must not depend on which engine (or how
    // many worker shards) produced the arena layout.
    #[test]
    fn sharded_built_maps_roundtrip_bit_identical_to_scalar(
        seed in any::<u64>(),
        nscans in 2usize..4,
        points in 20usize..50,
    ) {
        use omu::map::{Engine, MapBuilder, OccupancyMap};

        let scans = random_scans(seed, nscans, points);
        let shards = [1usize, 2, 4, 8][(seed % 4) as usize];
        let build = |engine: Engine| {
            let mut map = MapBuilder::new(0.1)
                .engine(engine)
                .max_range(Some(6.0))
                .build()
                .unwrap();
            for scan in &scans {
                map.insert(scan).unwrap();
            }
            map
        };
        let scalar = build(Engine::Scalar);
        let sharded = build(Engine::Sharded { shards });
        prop_assert_eq!(scalar.snapshot(), sharded.snapshot());

        // Byte round-trip of the sharded-built map lands exactly on the
        // scalar-built snapshot (and config).
        let restored = OccupancyMap::from_bytes(&sharded.to_bytes().unwrap()).unwrap();
        prop_assert_eq!(restored.snapshot(), scalar.snapshot());
        prop_assert_eq!(restored.resolution(), scalar.resolution());

        // File round-trip too (`save_to_file`/`load_from_file`).
        let path = std::env::temp_dir().join(format!(
            "omu_facade_roundtrip_{seed}_{shards}.omut"
        ));
        sharded.save_to_file(&path).unwrap();
        let reloaded = OccupancyMap::load_from_file(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(reloaded.snapshot(), scalar.snapshot());
        prop_assert_eq!(
            reloaded.to_bytes().unwrap(),
            scalar.to_bytes().unwrap(),
            "re-serialization is byte-stable across engines"
        );
    }
}

#[test]
fn sharded_accelerator_engine_matches_scalar_on_dataset() {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
    let config = config_for(DatasetKind::Fr079Corridor);
    let (scalar, s1) = omu::accel::run_accelerator(config.clone(), dataset.scans()).unwrap();
    let (sharded, s2) = omu::accel::run_accelerator_with_engine(
        config,
        dataset.scans(),
        UpdateEngine::ShardedParallel,
    )
    .unwrap();
    assert_eq!(scalar.snapshot(), sharded.snapshot());
    assert_eq!(s1.voxel_updates, s2.voxel_updates);
    // One contiguous run per PE per scan at most.
    assert!(sharded.morton_runs() > 0);
    assert!(sharded.morton_runs() <= s2.scans * 8);
}

#[test]
fn accelerator_batched_engine_matches_scalar_on_dataset() {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
    let config = config_for(DatasetKind::Fr079Corridor);
    let (scalar, s1) = omu::accel::run_accelerator(config.clone(), dataset.scans()).unwrap();
    let (batched, s2) = omu::accel::run_accelerator_with_engine(
        config,
        dataset.scans(),
        UpdateEngine::MortonBatched,
    )
    .unwrap();
    assert_eq!(scalar.snapshot(), batched.snapshot());
    assert_eq!(s1.voxel_updates, s2.voxel_updates);
    assert!(batched.morton_runs() > 0);
}

#[test]
fn queries_agree_between_engines() {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
    let config = config_for(DatasetKind::Fr079Corridor);
    let mut tree = verify::baseline_for(&config);
    let mut omu = OmuAccelerator::new(config).unwrap();
    for scan in dataset.scans() {
        tree.insert_scan(&scan).unwrap();
        omu.integrate_scan(&scan).unwrap();
    }
    // Probe around the first scan pose (the mapped region).
    let (center, _) = dataset.trajectory().poses(dataset.num_scans())[0];
    let mut rng = StdRng::seed_from_u64(5);
    let mut occupied_seen = 0;
    for _ in 0..2_000 {
        let p = Point3::new(
            center.x + rng.random_range(-5.0..5.0),
            center.y + rng.random_range(-4.0..4.0),
            center.z + rng.random_range(-1.5..1.8),
        );
        let sw = tree.occupancy_at(p).unwrap();
        let hw = omu.query_point(p).unwrap();
        assert_eq!(sw, hw, "engines disagree at {p}");
        if sw == Occupancy::Occupied {
            occupied_seen += 1;
        }
    }
    assert!(occupied_seen > 0, "probe set must touch occupied space");
}
