//! End-to-end pipeline checks: the headline comparisons of the paper hold
//! in the reproduction (who wins, by roughly what factor).

use omu::accel::{run_accelerator, OmuConfig};
use omu::cpumodel::{frame_equivalent_fps, CpuCostModel};
use omu::datasets::DatasetKind;
use omu::octree::OctreeF32;
use omu::raycast::IntegrationMode;

struct Pipeline {
    updates: u64,
    i9_s: f64,
    a57_s: f64,
    omu_s: f64,
    prune_share_cpu: f64,
    prune_share_omu: f64,
    power_mw: f64,
    sram_share: f64,
}

fn run_pipeline(kind: DatasetKind, scale: f64) -> Pipeline {
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();

    let mut tree = OctreeF32::new(spec.resolution).unwrap();
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    let mut updates = 0;
    for scan in dataset.scans() {
        updates += tree.insert_scan(&scan).unwrap().total_updates();
    }
    let counters = tree.counters();
    let i9 = CpuCostModel::i9_9940x().runtime(counters);
    let a57 = CpuCostModel::cortex_a57().runtime(counters);

    let config = OmuConfig::builder()
        .rows_per_bank(1 << 15)
        .resolution(spec.resolution)
        .max_range(Some(spec.max_range))
        .build()
        .unwrap();
    let (_, summary) = run_accelerator(config, dataset.scans()).unwrap();

    Pipeline {
        updates,
        i9_s: i9.total_s(),
        a57_s: a57.total_s(),
        omu_s: summary.latency_s,
        prune_share_cpu: i9.shares()[3],
        prune_share_omu: summary.breakdown_shares[2],
        power_mw: summary.power_mw,
        sram_share: summary.sram_power_share,
    }
}

#[test]
fn corridor_headline_comparisons_hold() {
    let p = run_pipeline(DatasetKind::Fr079Corridor, 0.05); // 4 scans
                                                            // Ordering: OMU < i9 < A57, with roughly the paper's factors.
    let speedup_i9 = p.i9_s / p.omu_s;
    let speedup_a57 = p.a57_s / p.omu_s;
    assert!(
        speedup_i9 > 4.0 && speedup_i9 < 30.0,
        "OMU speedup over i9 = {speedup_i9:.1} (paper: 12.8x)"
    );
    assert!(
        speedup_a57 > 20.0 && speedup_a57 < 150.0,
        "OMU speedup over A57 = {speedup_a57:.1} (paper: 62.4x)"
    );
    // Real-time: the accelerator clears 30 FPS, the CPUs do not.
    let omu_fps = frame_equivalent_fps(p.updates, p.omu_s);
    let i9_fps = frame_equivalent_fps(p.updates, p.i9_s);
    assert!(omu_fps > 30.0, "OMU fps = {omu_fps:.1} (paper: 63.66)");
    assert!(i9_fps < 30.0, "i9 fps = {i9_fps:.1} (paper: 5.23)");
    // The CPU bottleneck (prune/expand) is alleviated on the accelerator.
    assert!(
        p.prune_share_cpu > 0.25,
        "prune dominates CPU time: {:.2}",
        p.prune_share_cpu
    );
    assert!(
        p.prune_share_omu < 0.20,
        "paper: prune/expand < 20 % on OMU, got {:.2}",
        p.prune_share_omu
    );
    // Power anchors.
    assert!(
        p.power_mw > 120.0 && p.power_mw < 330.0,
        "OMU power = {:.1} mW (paper: 250.8)",
        p.power_mw
    );
    assert!(
        p.sram_share > 0.85,
        "SRAM dominates power: {:.2} (paper: 0.91)",
        p.sram_share
    );
}

#[test]
fn energy_benefit_is_orders_of_magnitude() {
    let p = run_pipeline(DatasetKind::NewCollege, 0.001); // ~92 scans
    let a57_energy = p.a57_s * 2.78;
    let omu_energy = p.power_mw * 1e-3 * p.omu_s;
    let benefit = a57_energy / omu_energy;
    assert!(
        benefit > 100.0,
        "energy benefit = {benefit:.0}x (paper: 668-708x)"
    );
}

#[test]
fn dma_and_raycast_latency_are_hidden() {
    // The paper hides ray casting behind map updates; the model's wall
    // clock must be dominated by PE work, not the front-end.
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
    let spec = *dataset.spec();
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 15)
        .resolution(spec.resolution)
        .max_range(Some(spec.max_range))
        .build()
        .unwrap();
    let (omu, _) = run_accelerator(config, dataset.scans()).unwrap();
    let stats = omu.stats();
    assert!(
        stats.raycast_cycles < stats.wall_cycles / 2,
        "ray casting is overlapped"
    );
    assert!(
        stats.dma_cycles < stats.wall_cycles / 10,
        "DMA is far from the bottleneck"
    );
    assert!(
        stats.pe_busy_total() > stats.wall_cycles,
        "PEs do the real work in parallel"
    );
}
