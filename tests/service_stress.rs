//! Serving-path stress: a writer applies randomized update batches
//! while epoch-pinned snapshots are held, probed, and dropped. Every
//! snapshot must stay bit-identical to a serial replay of the update
//! stream truncated at its epoch, no matter what the live tree does
//! afterwards — and reclamation must never free a row a pinned
//! snapshot can still reach (`debug_validate` is run after every
//! epoch, and retained snapshots are re-verified after each
//! reclamation pass).
//!
//! The update stream is seeded; set `OMU_SERVICE_STRESS_SEED`
//! (decimal or `0x`-prefixed hex) to reproduce a failing run. CI
//! re-runs this file in `--release` with the seed pinned.

use std::collections::VecDeque;
use std::sync::Mutex;

use omu::geometry::{Occupancy, VoxelKey};
use omu::octree::{OctreeF32, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream seed from `OMU_SERVICE_STRESS_SEED` (decimal or `0x` hex),
/// with a fixed default so the suite is deterministic out of the box.
fn stress_seed() -> u64 {
    let Ok(raw) = std::env::var("OMU_SERVICE_STRESS_SEED") else {
        return 0xD1CE;
    };
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    };
    parsed.unwrap_or_else(|| panic!("unparsable OMU_SERVICE_STRESS_SEED: {raw:?}"))
}

/// Randomized hit/miss observations confined to a small cube, so
/// successive epochs keep re-touching the same sibling rows — the
/// worst case for the row-COW machinery (every pinned epoch forces
/// copies) and the best case for catching reclamation bugs.
fn random_batches(seed: u64, batches: usize, updates: usize) -> Vec<Vec<(VoxelKey, bool)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..updates)
                .map(|_| {
                    let key = VoxelKey::new(
                        rng.random_range(512..536),
                        rng.random_range(512..536),
                        rng.random_range(512..524),
                    );
                    (key, rng.random_bool(0.6))
                })
                .collect()
        })
        .collect()
}

fn apply(tree: &mut OctreeF32, batch: &[(VoxelKey, bool)]) {
    for &(key, hit) in batch {
        tree.update_key(key, hit);
    }
}

/// Hold every snapshot the writer publishes; each must equal a serial
/// replay of the stream truncated at its epoch, long after the live
/// tree has diverged past it.
#[test]
fn every_snapshot_equals_serial_replay_at_its_epoch() {
    let seed = stress_seed();
    let batches = random_batches(seed, 20, 400);

    let mut tree = OctreeF32::new(0.05).unwrap();
    let mut snaps = Vec::new();
    for batch in &batches {
        apply(&mut tree, batch);
        snaps.push(tree.publish_snapshot());
        tree.debug_validate();
    }

    let stats = tree.snapshot_stats();
    assert_eq!(stats.snapshots_published, batches.len() as u64);
    assert_eq!(stats.pinned_snapshots, batches.len() as u64);
    assert!(
        stats.node_rows_copied + stats.leaf_rows_copied > 0,
        "a re-touching stream under pinned epochs must trigger row COW (seed {seed:#x})"
    );

    let mut replay = OctreeF32::new(0.05).unwrap();
    let mut last_epoch = None;
    for (snap, batch) in snaps.iter().zip(&batches) {
        apply(&mut replay, batch);
        assert_eq!(
            snap.canonical_leaves(),
            replay.snapshot(),
            "snapshot at epoch {} diverged from serial replay (seed {seed:#x})",
            snap.epoch(),
        );
        assert!(
            last_epoch.is_none_or(|last| snap.epoch() > last),
            "epochs must advance monotonically"
        );
        last_epoch = Some(snap.epoch());
    }
}

/// Sliding window of pinned snapshots: older epochs drop while the
/// writer streams on, so retired rows become reclaimable mid-run.
/// Reclamation must never free a row the retained snapshots still
/// read — each survivor is re-verified against the leaves it was
/// captured with after every reclamation pass.
#[test]
fn reclamation_never_frees_rows_reachable_from_pinned_snapshots() {
    const WINDOW: usize = 3;
    let seed = stress_seed();
    let batches = random_batches(seed ^ 0x5EC0, 30, 300);

    let mut tree = OctreeF32::new(0.05).unwrap();
    let mut window = VecDeque::new();
    for batch in &batches {
        apply(&mut tree, batch);
        let snap = tree.publish_snapshot();
        let expected = snap.canonical_leaves();
        window.push_back((snap, expected));
        if window.len() > WINDOW {
            window.pop_front();
        }
        // The dropped epoch's rows are now reclaimable; reclaim eagerly
        // and prove the arena invariants and every retained snapshot
        // survived it.
        tree.sync_cow_state();
        tree.debug_validate();
        for (snap, expected) in &window {
            assert_eq!(
                &snap.canonical_leaves(),
                expected,
                "epoch {} corrupted after reclamation (seed {seed:#x})",
                snap.epoch(),
            );
        }
    }

    assert!(
        tree.snapshot_stats().rows_reclaimed > 0,
        "a {WINDOW}-snapshot window over {} epochs must reclaim retired rows (seed {seed:#x})",
        batches.len(),
    );

    // Dropping the window releases the last pins: after one sync, every
    // retired row must be back on a free list.
    drop(window);
    tree.sync_cow_state();
    tree.debug_validate();
    let stats = tree.snapshot_stats();
    assert_eq!(stats.pinned_snapshots, 0);
    assert_eq!(
        stats.rows_awaiting_reclaim, 0,
        "unpinned retired rows must all be recycled (seed {seed:#x})"
    );
    assert_eq!(stats.rows_retired, stats.rows_reclaimed);
}

/// Readers on the worker pool probe a pinned snapshot *while* the
/// writer keeps mutating the live tree on the caller thread. Every
/// reader must see exactly the published epoch — bit-identical
/// occupancy for every probe — and the snapshot must still verify
/// after the writer has moved on.
#[test]
fn concurrent_readers_see_pinned_epochs_under_live_writes() {
    const READERS: usize = 4;
    const PROBES: usize = 2_000;
    let seed = stress_seed();
    let batches = random_batches(seed ^ 0xC011, 12, 400);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let probes: Vec<VoxelKey> = (0..PROBES)
        .map(|_| {
            VoxelKey::new(
                rng.random_range(510..540),
                rng.random_range(510..540),
                rng.random_range(510..526),
            )
        })
        .collect();

    let pool = WorkerPool::new(READERS);
    let mut tree = OctreeF32::new(0.05).unwrap();
    apply(&mut tree, &batches[0]);
    for next in &batches[1..] {
        let snap = tree.publish_snapshot();
        let expected_leaves = snap.canonical_leaves();
        let expected_occ: Vec<Occupancy> = snap.query_batch(&probes);
        let results = Mutex::new(Vec::new());
        pool.scope(|s| {
            for _ in 0..READERS {
                let snap = snap.clone();
                let probes = &probes;
                let results = &results;
                s.spawn(move || {
                    let occ = snap.query_batch(probes);
                    results.lock().unwrap().push(occ);
                });
            }
            // The writer never waits for the readers: it streams the
            // next batch into the live tree while they probe the
            // pinned epoch.
            apply(&mut tree, next);
        });
        let results = results.into_inner().unwrap();
        assert_eq!(results.len(), READERS);
        for occ in &results {
            assert_eq!(
                occ,
                &expected_occ,
                "a reader diverged from the pinned epoch {} (seed {seed:#x})",
                snap.epoch(),
            );
        }
        // The live tree has moved a full batch past the snapshot; the
        // pinned epoch must be untouched.
        assert_eq!(snap.canonical_leaves(), expected_leaves);
        tree.debug_validate();
    }
}
