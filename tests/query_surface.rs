//! Query-surface validation: the facade's `cast_ray` and
//! `collides_sphere` are checked against brute-force geometry on small
//! random maps, for both backends. The brute force never walks the ray —
//! it enumerates every occupied finest voxel from the map snapshot and
//! intersects analytically — so an error in the DDA walk, in the
//! unknown-space handling or in a backend's query path cannot cancel
//! out.

use omu::accel::OmuConfig;
use omu::geometry::{KeyConverter, Occupancy, Point3, PointCloud, Scan, VoxelKey, TREE_DEPTH};
use omu::map::{Backend, Engine, MapBuilder, OccupancyMap};
use omu::octree::RayCastResult;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RES: f64 = 0.1;

fn random_map_scans(seed: u64) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2)
        .map(|_| {
            let origin = Point3::new(
                rng.random_range(-0.4..0.4),
                rng.random_range(-0.4..0.4),
                rng.random_range(-0.3..0.3),
            );
            let cloud: PointCloud = (0..30)
                .map(|_| {
                    Point3::new(
                        rng.random_range(-2.5..2.5),
                        rng.random_range(-2.5..2.5),
                        rng.random_range(-1.0..1.0),
                    )
                })
                .collect();
            Scan::new(origin, cloud)
        })
        .collect()
}

fn backends() -> Vec<OccupancyMap> {
    vec![
        MapBuilder::new(RES).build().unwrap(),
        MapBuilder::new(RES)
            .backend(Backend::Accelerator(OmuConfig::default()))
            .engine(Engine::Sharded { shards: 8 })
            .build()
            .unwrap(),
    ]
}

/// Every occupied *finest* voxel of the map, expanded from the snapshot
/// (pruned occupied leaves cover whole cubes). Classification goes back
/// through the map's own query path so the expansion agrees with the
/// backend's thresholds exactly.
fn occupied_voxels(map: &mut OccupancyMap) -> Vec<VoxelKey> {
    let mut out = Vec::new();
    for (key, depth, _) in map.snapshot() {
        if map.occupancy(key) != Occupancy::Occupied {
            continue;
        }
        let span = 1u16 << (TREE_DEPTH - depth);
        for dx in 0..span {
            for dy in 0..span {
                for dz in 0..span {
                    out.push(VoxelKey::new(key.x + dx, key.y + dy, key.z + dz));
                }
            }
        }
    }
    out
}

/// Entry distance of the ray into a voxel's axis-aligned box (slab
/// method), or `None` when the ray misses it. `dir` must be normalized;
/// distances are metres along the ray, clamped at 0 for boxes containing
/// the origin.
fn ray_box_entry(conv: &KeyConverter, origin: Point3, dir: Point3, key: VoxelKey) -> Option<f64> {
    let c = conv.key_to_coord(key);
    let half = conv.resolution() / 2.0;
    let (mut t0, mut t1) = (f64::NEG_INFINITY, f64::INFINITY);
    for (o, d, lo, hi) in [
        (origin.x, dir.x, c.x - half, c.x + half),
        (origin.y, dir.y, c.y - half, c.y + half),
        (origin.z, dir.z, c.z - half, c.z + half),
    ] {
        if d.abs() < 1e-12 {
            if o < lo || o > hi {
                return None;
            }
            continue;
        }
        let (a, b) = ((lo - o) / d, (hi - o) / d);
        t0 = t0.max(a.min(b));
        t1 = t1.min(a.max(b));
    }
    (t1 >= t0 && t1 >= 0.0).then(|| t0.max(0.0))
}

fn ray_directions(seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    (0..6)
        .map(|_| {
            let theta: f64 = rng.random_range(0.0..std::f64::consts::TAU);
            let z: f64 = rng.random_range(-0.9..0.9);
            let r = (1.0 - z * z).sqrt();
            Point3::new(r * theta.cos(), r * theta.sin(), z)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // `cast_ray` through the facade finds exactly the occupied voxel
    // with the smallest ray-entry distance, on both backends.
    #[test]
    fn cast_ray_matches_brute_force_on_both_backends(seed in any::<u64>()) {
        let scans = random_map_scans(seed);
        let max_range = 6.0;
        for mut map in backends() {
            for scan in &scans {
                map.insert(scan).unwrap();
            }
            let occupied = occupied_voxels(&mut map);
            prop_assert!(!occupied.is_empty(), "maps must contain walls");
            let conv = *map.converter();
            let origin = scans[0].origin;

            for dir in ray_directions(seed) {
                let result = map.cast_ray(origin, dir, max_range, true).unwrap();
                let best = occupied
                    .iter()
                    .filter_map(|&k| ray_box_entry(&conv, origin, dir, k).map(|t| (k, t)))
                    .min_by(|a, b| a.1.total_cmp(&b.1));

                match (result, best) {
                    (RayCastResult::Hit { key, point, logodds }, Some((bk, bt))) => {
                        prop_assert!(
                            bt <= max_range + RES,
                            "{}: hit beyond brute-force range", map.backend_name()
                        );
                        prop_assert_eq!(
                            key, bk,
                            "{}: hit {:?} but brute force says {:?} (t = {:.3})",
                            map.backend_name(), key, bk, bt
                        );
                        prop_assert_eq!(point, conv.key_to_coord(key));
                        prop_assert_eq!(map.logodds(key), Some(logodds));
                        prop_assert_eq!(map.occupancy(key), Occupancy::Occupied);
                    }
                    (RayCastResult::MaxRangeReached, None) => {}
                    (RayCastResult::MaxRangeReached, Some((_, bt))) => {
                        // The only legitimate misses sit at the range
                        // boundary (the walk stops at max_range) or
                        // graze a box corner with zero chord length.
                        prop_assert!(
                            bt > max_range - RES,
                            "{}: walk missed an occupied voxel at t = {:.3}",
                            map.backend_name(), bt
                        );
                    }
                    (other, best) => {
                        prop_assert!(
                            false,
                            "{}: unexpected combination {:?} vs {:?}",
                            map.backend_name(), other, best
                        );
                    }
                }
            }
        }
    }

    // `collides_sphere` through the facade agrees with the analytic
    // check over all occupied voxels, on both backends.
    #[test]
    fn collides_sphere_matches_brute_force_on_both_backends(seed in any::<u64>()) {
        let scans = random_map_scans(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let probes: Vec<(Point3, f64)> = (0..12)
            .map(|_| {
                (
                    Point3::new(
                        rng.random_range(-2.5..2.5),
                        rng.random_range(-2.5..2.5),
                        rng.random_range(-1.0..1.0),
                    ),
                    rng.random_range(0.05..0.6),
                )
            })
            .collect();

        for mut map in backends() {
            for scan in &scans {
                map.insert(scan).unwrap();
            }
            let occupied = occupied_voxels(&mut map);
            let conv = *map.converter();

            for &(center, radius) in &probes {
                let got = map.collides_sphere(center, radius).unwrap();
                // The probe scans the voxel grid inside the sphere's
                // bounding cube and accepts centres within r plus half a
                // voxel diagonal.
                let lo = conv.coord_to_key(center - Point3::splat(radius)).unwrap();
                let hi = conv.coord_to_key(center + Point3::splat(radius)).unwrap();
                let expected = occupied.iter().any(|&k| {
                    (lo.x..=hi.x).contains(&k.x)
                        && (lo.y..=hi.y).contains(&k.y)
                        && (lo.z..=hi.z).contains(&k.z)
                        && conv.key_to_coord(k).distance(center) <= radius + RES * 0.866
                });
                prop_assert_eq!(
                    got, expected,
                    "{}: sphere at {} r = {:.2}",
                    map.backend_name(), center, radius
                );
            }
        }
    }
}

/// Fisher–Yates shuffle with a seeded generator (the vendored `rand`
/// has no `shuffle`).
fn shuffled<T>(mut v: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AFF1E);
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..i + 1));
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The batched/cursor query engines are bit-identical to the
    // per-probe path on every backend, with pruning on and off, for any
    // input order: `occupancy_batch_keys` vs per-key `occupancy`, and
    // cached `cast_ray` / batched `cast_rays` vs a reference cast that
    // probes every DDA step through the scalar path.
    #[test]
    fn batched_queries_bit_identical_to_per_probe(seed in any::<u64>(), pruning in any::<bool>()) {
        let scans = random_map_scans(seed);
        let max_range = 6.0;
        let maps = vec![
            // Software, sequential batched reads.
            MapBuilder::new(RES).pruning(pruning).build().unwrap(),
            // Software, sharded parallel read path.
            MapBuilder::new(RES)
                .pruning(pruning)
                .engine(Engine::Sharded { shards: 4 })
                .build()
                .unwrap(),
            // Accelerator voxel query unit.
            MapBuilder::new(RES)
                .pruning(pruning)
                .backend(Backend::Accelerator(OmuConfig::default()))
                .build()
                .unwrap(),
        ];
        for mut map in maps {
            for scan in &scans {
                map.insert(scan).unwrap();
            }
            let name = map.backend_name();
            let engine = map.engine();

            // A probe batch mixing occupied voxels, unknown space and
            // exact duplicates, in shuffled (non-Morton) order.
            let mut keys = occupied_voxels(&mut map);
            keys.truncate(200);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
            keys.extend((0..200).map(|_| {
                VoxelKey::new(
                    rng.random_range(32700..32840),
                    rng.random_range(32700..32840),
                    rng.random_range(32758..32788),
                )
            }));
            let dups: Vec<VoxelKey> = keys.iter().take(40).copied().collect();
            keys.extend(dups);
            let keys = shuffled(keys, seed);

            let expected: Vec<Occupancy> = keys.iter().map(|&k| map.occupancy(k)).collect();
            let got = map.query().occupancy_batch_keys(&keys);
            prop_assert_eq!(&got, &expected, "{} ({}): occupancy_batch_keys", name, engine);

            // Cached and batched ray casting vs the per-probe reference.
            let origin = scans[0].origin;
            let conv = *map.converter();
            for dir in ray_directions(seed) {
                for ignore in [true, false] {
                    let reference = omu::octree::cast_ray_with(
                        &conv, origin, dir, max_range, ignore,
                        |key| match map.occupancy(key) {
                            Occupancy::Occupied => (
                                Occupancy::Occupied,
                                map.logodds(key).expect("occupied voxel must hold a value"),
                            ),
                            other => (other, 0.0),
                        },
                    ).unwrap();
                    let cached = map.cast_ray(origin, dir, max_range, ignore).unwrap();
                    prop_assert_eq!(
                        cached, reference,
                        "{} ({}): cast_ray {} ignore={}", name, engine, dir, ignore
                    );
                }
            }
            let rays: Vec<(Point3, Point3)> =
                ray_directions(seed).into_iter().map(|d| (origin, d)).collect();
            let singles: Vec<RayCastResult> = rays
                .iter()
                .map(|&(o, d)| map.cast_ray(o, d, max_range, false).unwrap())
                .collect();
            let batch = map.cast_rays(&rays, max_range, false).unwrap();
            prop_assert_eq!(&batch, &singles, "{} ({}): cast_rays", name, engine);
        }
    }
}

/// Unknown-space blocking: with `ignore_unknown = false` both backends
/// stop at the same first unknown voxel (bit-identical maps on fixed
/// point make this exact).
#[test]
fn unknown_blocking_agrees_across_backends() {
    let scans = random_map_scans(11);
    let mut sw = MapBuilder::new(RES)
        .backend(Backend::SoftwareFixed)
        .build()
        .unwrap();
    let mut hw = MapBuilder::new(RES)
        .backend(Backend::Accelerator(OmuConfig::default()))
        .build()
        .unwrap();
    for scan in &scans {
        sw.insert(scan).unwrap();
        hw.insert(scan).unwrap();
    }
    let origin = scans[0].origin;
    let mut blocked = 0;
    for dir in ray_directions(11) {
        let a = sw.cast_ray(origin, dir, 8.0, false).unwrap();
        let b = hw.cast_ray(origin, dir, 8.0, false).unwrap();
        assert_eq!(a, b, "direction {dir}");
        if matches!(a, RayCastResult::UnknownBlocked { .. }) {
            blocked += 1;
        }
    }
    assert!(blocked > 0, "some rays must leave the observed cone");
}
