//! Worker-pool lifecycle at the facade and octree level: one persistent
//! pool serves every parallel engine path with zero per-call thread
//! spawns, idle workers park, `Drop` joins them, and a worker panic
//! surfaces as typed [`MapError::WorkerPanicked`] without poisoning the
//! tree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use omu::geometry::{Point3, PointCloud, Scan, VoxelKey};
use omu::map::{Engine, MapBuilder, MapError};
use omu::octree::OctreeF32;
use omu::pool::{TaskPanic, WorkerPool};
use omu::raycast::VoxelUpdate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scan big enough to clear every parallel amortization threshold
/// (`PARALLEL_MIN_POINTS`, `PARALLEL_APPLY_MIN_KEYS`).
fn big_scan(seed: u64) -> Scan {
    let mut rng = StdRng::seed_from_u64(seed);
    let cloud: PointCloud = (0..3000)
        .map(|_| {
            Point3::new(
                rng.random_range(-4.0..4.0),
                rng.random_range(-4.0..4.0),
                rng.random_range(-1.5..1.5),
            )
        })
        .collect();
    Scan::new(Point3::new(0.0, 0.0, 0.0), cloud)
}

/// A batch large enough that the sharded apply fans out over the pool,
/// spread across the center of key space so all eight branches exist.
fn big_batch(seed: u64) -> Vec<VoxelUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..6000)
        .map(|_| VoxelUpdate {
            key: VoxelKey::new(
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
                rng.random_range(32000..33500),
            ),
            hit: rng.random_range(0..4) != 0,
        })
        .collect()
}

#[test]
fn scope_runs_borrowed_tasks_to_completion() {
    let pool = WorkerPool::new(4);
    let counter = AtomicU64::new(0);
    pool.scope(|s| {
        for i in 0..16 {
            s.spawn_on(i, || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 16);
    let stats = pool.stats();
    assert_eq!(stats.tasks_dispatched, 16);
    assert_eq!(stats.tasks_completed(), 16);
    // `spawn_on(i)` routes to queue `i % 4`, so at most 4 workers exist
    // no matter how many tasks ran.
    assert!(stats.threads_spawned <= 4, "stats: {stats:?}");
}

#[test]
fn drop_joins_workers_after_all_tasks_finish() {
    let counter = Arc::new(AtomicU64::new(0));
    {
        let pool = WorkerPool::new(3);
        for _ in 0..50 {
            pool.scope(|s| {
                for i in 0..3 {
                    let counter = Arc::clone(&counter);
                    s.spawn_on(i, move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // `scope` blocks until its tasks complete, so the count is
        // exact before the pool is dropped (and `Drop` joins workers,
        // so the test exiting cleanly is itself the join assertion).
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }
    assert_eq!(counter.load(Ordering::Relaxed), 150);
}

#[test]
fn idle_workers_park_and_wake_for_the_next_scope() {
    let pool = WorkerPool::new(2);
    pool.scope(|s| {
        for i in 0..2 {
            s.spawn_on(i, || std::thread::sleep(Duration::from_millis(1)));
        }
    });
    let spawned = pool.stats().threads_spawned;
    assert!(spawned >= 1, "sleepy tasks force real workers to spawn");

    // Idle workers must end up parked on their condvars, not spinning.
    let deadline = Instant::now() + Duration::from_secs(5);
    while pool.stats().parks < spawned {
        assert!(Instant::now() < deadline, "workers never parked");
        std::thread::sleep(Duration::from_millis(2));
    }

    // A parked pool wakes up and runs the next scope with the same
    // threads — no respawn.
    let counter = AtomicU64::new(0);
    pool.scope(|s| {
        for i in 0..2 {
            s.spawn_on(i, || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 2);
    assert_eq!(pool.stats().threads_spawned, spawned);
}

/// The acceptance gate: after the first parallel operation warms the
/// pool, `threads_spawned` stays flat across every subsequent parallel
/// write and read — zero per-call thread spawns on any engine path.
#[test]
fn parallel_engine_paths_reuse_one_pool_with_zero_per_call_spawns() {
    let mut map = MapBuilder::new(0.1)
        .engine(Engine::Sharded { shards: 8 })
        .worker_threads(8)
        .max_range(Some(12.0))
        .build()
        .unwrap();

    map.insert(&big_scan(1)).unwrap();
    let warm = map.pool_stats().expect("parallel insert created the pool");
    assert!(warm.scopes > 0, "sharded insert must dispatch via the pool");

    for seed in 2..8 {
        map.insert(&big_scan(seed)).unwrap();
    }
    // Engine switches reuse the same pool: nothing respawns.
    map.set_engine(Engine::Parallel).unwrap();
    map.insert(&big_scan(99)).unwrap();

    let after = map.pool_stats().unwrap();
    assert_eq!(
        after.threads_spawned, warm.threads_spawned,
        "a warmed pool must never spawn threads per call"
    );
    assert!(after.scopes > warm.scopes);
    assert_eq!(after.tasks_completed(), after.tasks_dispatched);
}

#[test]
fn read_paths_share_the_trees_pool() {
    let mut tree = OctreeF32::new(0.1).unwrap();
    tree.apply_update_batch(&big_batch(7));

    let keys: Vec<VoxelKey> = big_batch(8).into_iter().map(|u| u.key).collect();
    tree.query_batch_parallel(&keys, 8);
    let warm = tree.pool_stats().expect("parallel query created the pool");

    let rays: Vec<(Point3, Point3)> = (0..64)
        .map(|i| {
            let a = i as f64 * 0.1;
            (
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(a.cos(), a.sin(), 0.1),
            )
        })
        .collect();
    for _ in 0..5 {
        tree.query_batch_parallel(&keys, 8);
        tree.cast_rays(&rays, 10.0, true, 8).unwrap();
    }

    let after = tree.pool_stats().unwrap();
    assert_eq!(after.threads_spawned, warm.threads_spawned);
    assert!(after.scopes > warm.scopes, "reads must go through the pool");
}

#[test]
fn builder_worker_threads_knob_sizes_the_pool() {
    let map = MapBuilder::new(0.1).worker_threads(3).build().unwrap();
    // The pool exists up front (the builder installed it), but workers
    // are lazy: none spawn until a parallel operation dispatches.
    let stats = map.pool_stats().expect("builder installed a pool");
    assert_eq!(stats.threads_spawned, 0);

    // Without the knob the pool itself is lazy.
    let map = MapBuilder::new(0.1).build().unwrap();
    assert!(map.pool_stats().is_none());
}

#[test]
fn worker_panic_is_typed_and_does_not_poison_the_map() {
    let scans: Vec<Scan> = (1..=3).map(big_scan).collect();
    let build = || {
        MapBuilder::new(0.1)
            .engine(Engine::Sharded { shards: 8 })
            .max_range(Some(12.0))
            .build()
            .unwrap()
    };

    let mut reference = build();
    for s in &scans {
        reference.insert(s).unwrap();
    }

    let mut map = build();
    map.insert(&scans[0]).unwrap();

    // Every branch is populated by a big random scan, so branch 0 is
    // guaranteed to carry a shard task.
    map.debug_inject_worker_panic(Some(0));
    let err = map.insert(&scans[1]).expect_err("injected panic surfaces");
    match err {
        MapError::WorkerPanicked(p) => {
            assert!(p.count() >= 1);
            assert!(
                p.first_message().contains("injected worker panic"),
                "panic message survives: {p}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The tree is structurally intact: clearing the injection and
    // replaying from scratch converges to the reference map.
    map.debug_inject_worker_panic(None);
    let mut replay = build();
    for s in &scans {
        replay.insert(s).unwrap();
    }
    assert_eq!(replay.snapshot(), reference.snapshot());

    // And the panicked map itself keeps accepting scans (the pool and
    // scratch buffers are not poisoned).
    map.insert(&scans[2]).unwrap();
    assert!(map.pool_stats().unwrap().tasks_completed() > 0);
}

#[test]
fn worker_panic_leaves_the_tree_debug_validate_clean() {
    let updates = big_batch(11);
    let mut tree = OctreeF32::new(0.1).unwrap();
    tree.apply_update_batch(&updates);

    tree.debug_inject_worker_panic(Some(3));
    let p = tree
        .try_apply_update_batch_parallel(&big_batch(12), 8)
        .expect_err("injected panic propagates as TaskPanic");
    assert!(p.first_message().contains("injected worker panic"));

    // All shards were reattached despite the panic: the tree passes its
    // structural audit and keeps working.
    tree.debug_validate();
    tree.debug_inject_worker_panic(None);
    tree.try_apply_update_batch_parallel(&big_batch(13), 8)
        .unwrap();
    tree.debug_validate();
}

#[test]
fn task_panic_is_a_well_behaved_error_type() {
    fn assert_bounds<T: std::error::Error + Send + Sync + Clone + PartialEq + 'static>() {}
    assert_bounds::<TaskPanic>();
    fn assert_map_err<T: std::error::Error + Send + Sync + 'static>() {}
    assert_map_err::<MapError>();
}
