//! Packet front-end equivalence: the SoA ray packet must visit exactly
//! the voxel sequence of the scalar Amanatides–Woo DDA for every ray,
//! and the front-end choice must be invisible in every map it feeds —
//! same leaves, same operation counters, across all update engines and
//! both backends. This is the contract that lets `FrontEnd::Packet` be
//! the default: it is a pure speed knob, not a semantic one.

use omu::accel::{verify, OmuAccelerator, OmuConfig};
use omu::geometry::{KeyConverter, Point3, PointCloud, Scan};
use omu::octree::OctreeF32;
use omu::raycast::{
    compute_ray_keys, FrontEnd, IntegrationMode, KeyRay, LaneOutcome, RayPacket, ScanIntegrator,
    VoxelUpdate, PACKET_LANES,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Casts `points` through one packet and demands each lane reproduce the
/// scalar `compute_ray_keys` voxel sequence exactly (all endpoints must
/// be inside the addressable map).
fn assert_packet_matches_scalar_dda(conv: &KeyConverter, origin: Point3, points: &[Point3]) {
    let key_origin = conv.coord_to_key(origin).unwrap();
    let mut packet = RayPacket::new();
    packet.cast(conv, origin, key_origin, points, None);
    assert_eq!(packet.lanes(), points.len());
    let mut scalar = KeyRay::new();
    for (lane, &p) in points.iter().enumerate() {
        compute_ray_keys(conv, origin, p, &mut scalar).unwrap();
        assert_eq!(
            packet.keys(lane),
            scalar.keys(),
            "lane {lane} diverged from the scalar DDA (origin {origin:?}, endpoint {p:?})"
        );
        let end_key = conv.coord_to_key(p).unwrap();
        assert_eq!(packet.outcome(lane), LaneOutcome::Hit(end_key));
    }
}

/// Streams one scan through the integrator under both front ends and
/// demands identical update sequences and identical statistics.
fn assert_integrator_streams_match(scan: &Scan, max_range: Option<f64>, mode: IntegrationMode) {
    let conv = KeyConverter::new(0.1).unwrap();
    let run = |front_end: FrontEnd| {
        let mut updates: Vec<VoxelUpdate> = Vec::new();
        let mut it = ScanIntegrator::with_front_end(conv, max_range, mode, front_end);
        let stats = it.integrate(scan, |u| updates.push(u)).unwrap();
        (updates, stats)
    };
    let (scalar_updates, scalar_stats) = run(FrontEnd::Scalar);
    let (packet_updates, packet_stats) = run(FrontEnd::Packet);
    assert_eq!(
        scalar_updates, packet_updates,
        "update streams diverged (max_range {max_range:?}, mode {mode:?})"
    );
    assert_eq!(scalar_stats, packet_stats);
}

fn random_scan(rng: &mut StdRng, points: usize) -> Scan {
    let origin = Point3::new(
        rng.random_range(-0.5..0.5),
        rng.random_range(-0.5..0.5),
        rng.random_range(-0.3..0.3),
    );
    let cloud: PointCloud = (0..points)
        .map(|_| {
            Point3::new(
                rng.random_range(-4.0..4.0),
                rng.random_range(-4.0..4.0),
                rng.random_range(-1.5..1.5),
            )
        })
        .collect();
    Scan::new(origin, cloud)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Core DDA contract: for random in-bounds rays, every packet lane
    // walks the exact voxel sequence of the scalar Amanatides–Woo DDA.
    #[test]
    fn packet_lanes_visit_the_scalar_voxel_sequence(
        seed in any::<u64>(),
        lanes in 1usize..=PACKET_LANES,
    ) {
        let conv = KeyConverter::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let origin = Point3::new(
            rng.random_range(-3.0..3.0),
            rng.random_range(-3.0..3.0),
            rng.random_range(-3.0..3.0),
        );
        let points: Vec<Point3> = (0..lanes)
            .map(|_| {
                Point3::new(
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-8.0..8.0),
                )
            })
            .collect();
        assert_packet_matches_scalar_dda(&conv, origin, &points);
    }

    // Integrator-level contract, including max-range truncation and
    // out-of-bounds endpoint discarding: the per-voxel update stream is
    // identical element-for-element under either front end.
    #[test]
    fn integrator_update_streams_are_identical(
        seed in any::<u64>(),
        points in 1usize..40,
        range_tenths in 0u32..60,
    ) {
        // range_tenths 0 means "no max range"; otherwise 0.5..6.0 m.
        let max_range = (range_tenths >= 5).then(|| f64::from(range_tenths) / 10.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let scan = random_scan(&mut rng, points);
        assert_integrator_streams_match(&scan, max_range, IntegrationMode::Raywise);
        assert_integrator_streams_match(&scan, max_range, IntegrationMode::DedupPerScan);
    }
}

#[test]
fn axis_aligned_and_degenerate_rays_match_the_scalar_dda() {
    let conv = KeyConverter::new(0.1).unwrap();
    let origin = Point3::new(0.05, 0.05, 0.05);
    // One ray per axis direction, a diagonal, and a sub-voxel ray — the
    // cases where the DDA's tie-break order between axes shows up.
    let points = [
        Point3::new(2.0, 0.05, 0.05),
        Point3::new(-2.0, 0.05, 0.05),
        Point3::new(0.05, 2.0, 0.05),
        Point3::new(0.05, -2.0, 0.05),
        Point3::new(0.05, 0.05, 2.0),
        Point3::new(0.05, 0.05, -2.0),
        Point3::new(1.7, 1.7, 1.7),
        Point3::new(0.08, 0.06, 0.07),
    ];
    assert_packet_matches_scalar_dda(&conv, origin, &points);
    // Voxel-boundary origin: exercises the t_max initialisation ties.
    let boundary = Point3::new(0.1, 0.2, 0.3);
    assert_packet_matches_scalar_dda(&conv, boundary, &points);
}

#[test]
fn zero_length_rays_are_empty_hits() {
    let conv = KeyConverter::new(0.1).unwrap();
    let origin = Point3::new(0.25, 0.25, 0.25);
    let key_origin = conv.coord_to_key(origin).unwrap();
    // Exact zero-length plus a same-voxel neighbour: both must produce
    // an empty traversal with a hit on the origin's own voxel, exactly
    // like the scalar integrator's same-voxel short-circuit.
    let points = [origin, Point3::new(0.26, 0.24, 0.25)];
    let mut packet = RayPacket::new();
    packet.cast(&conv, origin, key_origin, &points, None);
    for lane in 0..points.len() {
        assert!(packet.keys(lane).is_empty());
        assert_eq!(packet.steps(lane), 0);
        assert_eq!(packet.outcome(lane), LaneOutcome::Hit(key_origin));
    }
    let scan = Scan::new(origin, points.iter().copied().collect::<PointCloud>());
    assert_integrator_streams_match(&scan, None, IntegrationMode::Raywise);
}

/// Inserts the same random workload through every software update engine
/// under both front ends and demands bit-identical trees *and*
/// bit-identical operation counters — the packet front end must not even
/// change what the CPU timing model sees.
#[test]
fn software_engines_are_bit_identical_across_front_ends() {
    let scans: Vec<Scan> = {
        let mut rng = StdRng::seed_from_u64(4242);
        (0..12).map(|_| random_scan(&mut rng, 48)).collect()
    };
    let build = |front_end: FrontEnd, engine: &str| {
        let mut tree = OctreeF32::new(0.1).unwrap();
        tree.set_max_range(Some(5.0));
        tree.set_front_end(front_end);
        for scan in &scans {
            match engine {
                "scalar" => tree.insert_scan(scan).unwrap(),
                "batched" => tree.insert_scan_batched(scan).unwrap(),
                "parallel" => tree.insert_scan_parallel(scan, 4).unwrap(),
                _ => unreachable!(),
            };
        }
        tree
    };
    for engine in ["scalar", "batched", "parallel"] {
        let scalar_fe = build(FrontEnd::Scalar, engine);
        let packet_fe = build(FrontEnd::Packet, engine);
        assert_eq!(
            scalar_fe.snapshot(),
            packet_fe.snapshot(),
            "{engine} engine maps diverged across front ends"
        );
        assert_eq!(
            scalar_fe.counters(),
            packet_fe.counters(),
            "{engine} engine op counters diverged across front ends"
        );
    }
}

/// Runs the accelerator's three update engines under both front ends and
/// checks each against the same software baseline: all six runs must
/// land on the identical map.
#[test]
fn accelerator_engines_are_bit_identical_across_front_ends() {
    let scans: Vec<Scan> = {
        let mut rng = StdRng::seed_from_u64(77);
        (0..10).map(|_| random_scan(&mut rng, 40)).collect()
    };
    let config = |front_end: FrontEnd| {
        OmuConfig::builder()
            .resolution(0.1)
            .max_range(Some(5.0))
            .front_end(front_end)
            .build()
            .unwrap()
    };
    let mut baseline = verify::baseline_for(&config(FrontEnd::Scalar));
    for scan in &scans {
        baseline.insert_scan(scan).unwrap();
    }
    let mut voxel_updates = Vec::new();
    for front_end in [FrontEnd::Scalar, FrontEnd::Packet] {
        for engine in ["scalar", "batched", "sharded"] {
            let mut omu = OmuAccelerator::new(config(front_end)).unwrap();
            for scan in &scans {
                match engine {
                    "scalar" => omu.integrate_scan(scan).unwrap(),
                    "batched" => omu.integrate_scan_batched(scan).unwrap(),
                    "sharded" => omu.integrate_scan_sharded(scan).unwrap(),
                    _ => unreachable!(),
                };
            }
            verify::check_equivalence(&baseline, &omu).unwrap_or_else(|m| {
                panic!("{engine}/{front_end} diverged from the baseline:\n{m}")
            });
            voxel_updates.push(omu.stats().voxel_updates);
        }
    }
    // The paper's Table II work metric must be front-end independent.
    assert!(voxel_updates.iter().all(|&v| v == voxel_updates[0]));
}

/// The packet front end reports its own stats (packets, supersteps, lane
/// occupancy) while leaving `IntegrationStats` untouched — the scalar
/// stats are the cross-engine equality currency.
#[test]
fn packet_stats_report_lane_occupancy() {
    let conv = KeyConverter::new(0.1).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let scan = random_scan(&mut rng, 64);
    let mut it =
        ScanIntegrator::with_front_end(conv, None, IntegrationMode::Raywise, FrontEnd::Packet);
    it.integrate(&scan, |_| {}).unwrap();
    let stats = it.packet_stats();
    assert_eq!(stats.packets, 64u64.div_ceil(PACKET_LANES as u64));
    assert!(stats.lane_steps > 0);
    let occ = stats.lane_occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "lane occupancy {occ} out of range");

    let mut scalar =
        ScanIntegrator::with_front_end(conv, None, IntegrationMode::Raywise, FrontEnd::Scalar);
    scalar.integrate(&scan, |_| {}).unwrap();
    assert_eq!(scalar.packet_stats().packets, 0);
}
