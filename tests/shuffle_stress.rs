//! Order-independence stress: the parallel engines must produce
//! bit-identical maps and query results under *every* task execution
//! order. The pool's seeded shuffle defers each scope's tasks and
//! publishes them in a permuted order (and permutes the caller-help
//! queue sweep), so these runs exercise schedules the default
//! round-robin dispatch never produces. Any divergence from the scalar
//! reference is an order-dependence bug in the sharded walk, the merge
//! step, or the counters.
//!
//! CI additionally runs this file in `--release` with
//! `OMU_POOL_SHUFFLE_SEED` set, covering the env-var path.

use omu::geometry::{Point3, PointCloud, Scan};
use omu::map::{Engine, MapBuilder, OccupancyMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_scans(seed: u64, scans: usize, points: usize) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..scans)
        .map(|_| {
            let origin = Point3::new(
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.3..0.3),
            );
            let cloud: PointCloud = (0..points)
                .map(|_| {
                    Point3::new(
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-1.5..1.5),
                    )
                })
                .collect();
            Scan::new(origin, cloud)
        })
        .collect()
}

fn build_map(engine: Engine, scans: &[Scan], shuffle_seed: Option<u64>) -> OccupancyMap {
    // 8 workers + 12 m range: the same setup the worker-pool suite uses
    // to push scans past the spawn-amortization threshold, so the
    // sharded walk genuinely fans out instead of running inline.
    let mut builder = MapBuilder::new(0.1)
        .engine(engine)
        .worker_threads(8)
        .max_range(Some(12.0));
    if let Some(seed) = shuffle_seed {
        builder = builder.task_shuffle_seed(seed);
    }
    let mut map = builder.build().unwrap();
    for scan in scans {
        map.insert(scan).unwrap();
    }
    map
}

#[test]
fn sharded_writes_stay_bit_identical_under_shuffle() {
    let scans = random_scans(0xC0FFEE, 4, 3000);
    let reference = build_map(Engine::Scalar, &scans, None).snapshot();
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let shuffled = build_map(Engine::Sharded { shards: 8 }, &scans, Some(seed));
        let stats = shuffled.pool_stats().expect("parallel path ran");
        assert!(
            stats.shuffled_scopes > 0,
            "workload too small to engage the shuffle: {stats:?}"
        );
        assert_eq!(
            shuffled.snapshot(),
            reference,
            "sharded map diverged from scalar under shuffle seed {seed:#x}"
        );
    }
}

#[test]
fn batched_writes_stay_bit_identical_under_shuffle() {
    let scans = random_scans(0xBEE, 4, 3000);
    let reference = build_map(Engine::Scalar, &scans, None).snapshot();
    for seed in [7u64, 0x5EED] {
        let shuffled = build_map(Engine::Batched, &scans, Some(seed));
        assert_eq!(
            shuffled.snapshot(),
            reference,
            "batched map diverged from scalar under shuffle seed {seed:#x}"
        );
    }
}

#[test]
fn parallel_queries_and_ray_casts_agree_under_shuffle() {
    let scans = random_scans(0xACE, 3, 3000);
    let mut plain = build_map(Engine::Sharded { shards: 8 }, &scans, None);
    let mut shuffled = build_map(Engine::Sharded { shards: 8 }, &scans, Some(0x0D15_EA5E));

    let mut rng = StdRng::seed_from_u64(9);
    let probes: Vec<Point3> = (0..4096)
        .map(|_| {
            Point3::new(
                rng.random_range(-4.0..4.0),
                rng.random_range(-4.0..4.0),
                rng.random_range(-1.5..1.5),
            )
        })
        .collect();
    assert_eq!(
        plain.occupancy_batch(&probes).unwrap(),
        shuffled.occupancy_batch(&probes).unwrap(),
        "batched occupancy reads diverged under shuffle"
    );

    let rays: Vec<(Point3, Point3)> = (0..512)
        .map(|_| {
            let d = Point3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-0.5..0.5),
            );
            (Point3::new(0.0, 0.0, 0.0), d)
        })
        .collect();
    assert_eq!(
        plain.cast_rays(&rays, 6.0, false).unwrap(),
        shuffled.cast_rays(&rays, 6.0, false).unwrap(),
        "batched ray casts diverged under shuffle"
    );
}

#[test]
fn shuffle_engages_the_pool_counter() {
    let scans = random_scans(3, 2, 3000);
    let map = build_map(Engine::Sharded { shards: 8 }, &scans, Some(11));
    let stats = map.pool_stats().expect("parallel path ran");
    assert!(
        stats.shuffled_scopes > 0,
        "shuffle seed was set but no scope ran shuffled: {stats:?}"
    );
}
