//! Facade-level equivalence: every `omu::map::Engine` variant must
//! produce the identical map for the same scan sequence, on both the
//! software and the accelerator backend — the facade's core contract
//! (engine selection is a knob, never a semantic choice).

use omu::accel::OmuConfig;
use omu::geometry::{Occupancy, Point3, PointCloud, Scan};
use omu::map::{Backend, Engine, MapBuilder, MapError, OccupancyMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_scans(seed: u64, scans: usize, points: usize) -> Vec<Scan> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..scans)
        .map(|_| {
            let origin = Point3::new(
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.5..0.5),
                rng.random_range(-0.3..0.3),
            );
            let cloud: PointCloud = (0..points)
                .map(|_| {
                    Point3::new(
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-4.0..4.0),
                        rng.random_range(-1.5..1.5),
                    )
                })
                .collect();
            Scan::new(origin, cloud)
        })
        .collect()
}

fn build(backend: Backend, engine: Engine) -> OccupancyMap {
    MapBuilder::new(0.1)
        .engine(engine)
        .backend(backend)
        .max_range(Some(6.0))
        .build()
        .unwrap()
}

/// All engines: identical snapshots per backend; the batch-family
/// engines additionally agree on the full `OpCounters` record, and every
/// engine (including scalar) performs the same ray-casting work.
#[test]
fn every_engine_is_bit_identical_on_every_backend() {
    let scans = random_scans(2026, 3, 40);
    for backend in [
        Backend::Software,
        Backend::SoftwareFixed,
        Backend::Accelerator(OmuConfig::default()),
    ] {
        let mut maps: Vec<OccupancyMap> = Engine::ALL
            .iter()
            .map(|&engine| {
                let mut m = build(backend.clone(), engine);
                for scan in &scans {
                    m.insert(scan).unwrap();
                }
                m
            })
            .collect();

        let reference = maps[0].snapshot(); // scalar
        assert!(reference.len() > 500, "non-trivial map");
        for map in &maps {
            assert_eq!(
                map.snapshot(),
                reference,
                "{} diverged from scalar on the {} backend",
                map.engine(),
                map.backend_name()
            );
        }

        match backend {
            Backend::Accelerator(_) => {
                // The accelerator accounts in AccelStats: same workload
                // executed regardless of front end.
                let updates: Vec<u64> = maps
                    .iter()
                    .map(|m| m.accelerator().unwrap().stats().voxel_updates)
                    .collect();
                assert!(updates.windows(2).all(|w| w[0] == w[1]), "{updates:?}");
            }
            _ => {
                // The batch-family engines (batched / parallel / sharded)
                // share one tree-maintenance schedule: identical
                // OpCounters bit for bit. The scalar engine does the same
                // ray casting but eager per-update maintenance, so only
                // dda_steps is comparable across the scalar/batched line.
                let batched = maps[1].counters().unwrap();
                for m in &mut maps[2..] {
                    assert_eq!(
                        m.counters().unwrap(),
                        batched,
                        "{}: counters diverged from batched",
                        m.engine()
                    );
                }
                let scalar = maps[0].counters().unwrap();
                assert_eq!(scalar.dda_steps, batched.dda_steps);
                assert_eq!(
                    scalar.leaf_updates + scalar.saturated_skips,
                    batched.batch_updates
                );
            }
        }
    }
}

/// Cross-backend bit-identity: on the accelerator's 16-bit fixed point,
/// the software backend and the accelerator model hold the same map for
/// every engine.
#[test]
fn software_fixed_and_accelerator_agree_for_every_engine() {
    let scans = random_scans(7, 3, 40);
    for engine in Engine::ALL {
        let mut sw = build(Backend::SoftwareFixed, engine);
        let mut hw = build(Backend::Accelerator(OmuConfig::default()), engine);
        for scan in &scans {
            let a = sw.insert(scan).unwrap();
            let b = hw.insert(scan).unwrap();
            assert_eq!(a, b, "{engine}: integration stats diverged");
        }
        assert_eq!(sw.snapshot(), hw.snapshot(), "{engine}: maps diverged");
    }
}

/// Engine switching mid-stream is safe: the map is engine-independent.
#[test]
fn engine_can_change_between_scans() {
    let scans = random_scans(99, 4, 30);
    let mut fixed = build(Backend::Software, Engine::Batched);
    let mut rotating = build(Backend::Software, Engine::Scalar);
    for (i, scan) in scans.iter().enumerate() {
        rotating
            .set_engine(Engine::ALL[i % Engine::ALL.len()])
            .unwrap();
        fixed.insert(scan).unwrap();
        rotating.insert(scan).unwrap();
    }
    assert_eq!(fixed.snapshot(), rotating.snapshot());
}

/// The unified error surface: out-of-bounds is the same typed variant on
/// both backends, for points and for scan origins.
#[test]
fn out_of_bounds_is_uniformly_typed() {
    for backend in [
        Backend::Software,
        Backend::Accelerator(OmuConfig::default()),
    ] {
        let mut map = build(backend, Engine::Batched);
        let far = map.converter().map_half_extent() + 10.0;
        let p = Point3::new(far, 0.0, 0.0);
        assert!(matches!(map.occupancy_at(p), Err(MapError::OutOfBounds(_))));
        assert!(matches!(
            map.insert(&Scan::new(p, PointCloud::new())),
            Err(MapError::OutOfBounds(_))
        ));
        // In-map queries stay infallible by key and classified Unknown.
        assert_eq!(
            map.occupancy(omu::geometry::VoxelKey::ORIGIN),
            Occupancy::Unknown
        );
    }
}

/// T-Mem exhaustion surfaces as the typed capacity variant through the
/// facade.
#[test]
fn capacity_error_is_typed() {
    let config = OmuConfig::builder().rows_per_bank(16).build().unwrap();
    let mut map = build(Backend::Accelerator(config), Engine::Batched);
    let scan = Scan::new(
        Point3::ZERO,
        (0..64)
            .map(|i| {
                let a = i as f64 * 0.1;
                Point3::new(6.0 * a.cos(), 6.0 * a.sin(), 1.0)
            })
            .collect::<PointCloud>(),
    );
    assert!(matches!(map.insert(&scan), Err(MapError::Capacity(_))));
}
