//! Memory behaviour across crates: pruning savings, the prune address
//! manager's reuse, and graceful capacity exhaustion.

use omu::accel::{AccelError, OmuAccelerator, OmuConfig};
use omu::datasets::DatasetKind;
use omu::geometry::{Point3, PointCloud, Scan};
use omu::octree::OctreeF32;
use omu::raycast::IntegrationMode;

fn corridor_scans() -> (Vec<Scan>, f64, f64) {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.05);
    let spec = *dataset.spec();
    (dataset.scans().collect(), spec.resolution, spec.max_range)
}

#[test]
fn pruning_saves_substantial_memory_without_accuracy_loss() {
    let (scans, resolution, max_range) = corridor_scans();
    let mut with_prune = OctreeF32::new(resolution).unwrap();
    let mut without_prune = OctreeF32::new(resolution).unwrap();
    for tree in [&mut with_prune, &mut without_prune] {
        tree.set_integration_mode(IntegrationMode::Raywise);
        tree.set_max_range(Some(max_range));
    }
    without_prune.set_pruning_enabled(false);
    for scan in &scans {
        with_prune.insert_scan(scan).unwrap();
        without_prune.insert_scan(scan).unwrap();
    }

    let saving = 1.0
        - with_prune.memory_stats().octomap_equivalent_bytes as f64
            / without_prune.memory_stats().octomap_equivalent_bytes as f64;
    // Paper (citing the OctoMap paper): up to 44 % savings.
    assert!(
        saving > 0.25,
        "pruning saved only {:.0} % (paper: up to 44 %)",
        saving * 100.0
    );

    // No accuracy loss: every finest voxel classifies identically.
    for leaf in without_prune.iter_leaves() {
        if leaf.depth == omu::geometry::TREE_DEPTH {
            assert_eq!(with_prune.occupancy(leaf.key), leaf.occupancy);
        }
    }

    // prune_all on the unpruned tree converges to the pruned size.
    without_prune.prune_all();
    assert_eq!(without_prune.num_nodes(), with_prune.num_nodes());
}

/// Memory-regression guard for the sibling-row arena: heap bytes per
/// live node on the corridor map must stay under a recorded ceiling.
///
/// The pre-refactor block arena measured 19.24 B/node on this workload
/// (scale 0.1, batched build); the sibling-row layout landed at
/// ≈8–9 B/node including vector capacity slack. The ceiling leaves
/// headroom for allocator noise while still failing loudly if a change
/// reintroduces per-node pointer overhead. Release builds only — debug
/// capacity growth patterns differ and the walk is ~20× slower.
#[test]
fn bytes_per_node_stays_under_recorded_ceiling() {
    if cfg!(debug_assertions) {
        eprintln!("skipping memory guard in debug build");
        return;
    }
    const CEILING_BYTES_PER_NODE: f64 = 13.0;
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();
    let mut tree = OctreeF32::new(spec.resolution).unwrap();
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    for scan in dataset.scans() {
        tree.insert_scan_batched(&scan).unwrap();
    }
    let mem = tree.memory_stats();
    assert!(mem.live_nodes > 10_000, "non-trivial map");
    assert!(
        mem.bytes_per_node() < CEILING_BYTES_PER_NODE,
        "arena regressed to {:.2} B/node (ceiling {CEILING_BYTES_PER_NODE}, \
         block arena was 19.24)",
        mem.bytes_per_node()
    );
    // The row accounting matches the tree structure: one row per inner
    // node plus the root row.
    let stats = tree.tree_stats();
    assert_eq!(mem.live_rows, stats.num_inner + 1);
}

#[test]
fn prune_address_manager_recycles_rows() {
    let (scans, resolution, max_range) = corridor_scans();
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 15)
        .resolution(resolution)
        .max_range(Some(max_range))
        .build()
        .unwrap();
    let mut omu = OmuAccelerator::new(config).unwrap();
    for scan in &scans {
        omu.integrate_scan(scan).unwrap();
    }
    let stats = omu.stats();
    let reuse: u64 = stats.per_pe.iter().map(|p| p.prune_mgr.reuse_hits).sum();
    let fresh: u64 = stats.per_pe.iter().map(|p| p.prune_mgr.fresh_allocs).sum();
    let frees: u64 = stats.per_pe.iter().map(|p| p.prune_mgr.frees).sum();
    assert!(frees > 1_000, "pruning must free rows ({frees})");
    assert!(
        reuse as f64 > 0.5 * fresh as f64,
        "the stack must serve a large share of allocations (reuse {reuse} vs fresh {fresh})"
    );
    // Live rows stay well below the no-reuse footprint.
    let live: u64 = stats.per_pe.iter().map(|p| p.live_rows).sum();
    assert!(
        live < fresh + reuse,
        "reuse keeps the footprint below total allocations"
    );
}

#[test]
fn capacity_exhaustion_is_a_clean_error() {
    let config = OmuConfig::builder().rows_per_bank(16).build().unwrap();
    let mut omu = OmuAccelerator::new(config).unwrap();
    let scan = Scan::new(
        Point3::ZERO,
        (0..64)
            .map(|i| {
                let a = i as f64 * 0.1;
                Point3::new(6.0 * a.cos(), 6.0 * a.sin(), 1.0)
            })
            .collect::<PointCloud>(),
    );
    match omu.integrate_scan(&scan) {
        Err(AccelError::Capacity(c)) => {
            assert_eq!(c.rows_per_bank, 16);
            assert!(c.pe < 8);
        }
        other => panic!("expected capacity error, got {other:?}"),
    }
    // The device still answers queries after the overflow.
    let _ = omu.query_point(Point3::new(1.0, 0.0, 0.0)).unwrap();
}

#[test]
fn tmem_utilization_reported_sanely() {
    let (scans, resolution, max_range) = corridor_scans();
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 15)
        .resolution(resolution)
        .max_range(Some(max_range))
        .build()
        .unwrap();
    let mut omu = OmuAccelerator::new(config).unwrap();
    for scan in &scans {
        omu.integrate_scan(scan).unwrap();
    }
    let u = omu.sram_utilization();
    assert!(u > 0.0 && u < 1.0, "utilization {u}");
    let stats = omu.stats();
    for pe in &stats.per_pe {
        assert!(pe.high_water_rows >= pe.live_rows);
    }
}
