//! Serialization across crates: maps built from dataset scans survive a
//! byte round-trip on both value representations.

use omu::datasets::DatasetKind;
use omu::geometry::Point3;
use omu::octree::{DeserializeError, OctreeF32, OctreeFixed};
use omu::raycast::IntegrationMode;

fn build<TreeInit>(init: TreeInit) -> Vec<u8>
where
    TreeInit: FnOnce(f64) -> Vec<u8>,
{
    init(0.2)
}

#[test]
fn float_map_roundtrips_through_bytes() {
    let bytes = build(|res| {
        let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
        let mut tree = OctreeF32::new(res).unwrap();
        tree.set_integration_mode(IntegrationMode::Raywise);
        tree.set_max_range(Some(dataset.spec().max_range));
        for scan in dataset.scans() {
            tree.insert_scan(&scan).unwrap();
        }
        let encoded = tree.to_bytes();
        let restored = OctreeF32::from_bytes(&encoded).unwrap();
        assert_eq!(restored.snapshot(), tree.snapshot());
        assert_eq!(restored.num_nodes(), tree.num_nodes());
        // Queries survive.
        for p in [
            Point3::new(0.5, 0.0, 0.0),
            Point3::new(3.0, 1.0, 0.5),
            Point3::new(-5.0, -1.0, -0.5),
        ] {
            assert_eq!(
                restored.occupancy_at(p).unwrap(),
                tree.occupancy_at(p).unwrap()
            );
        }
        encoded
    });
    assert!(bytes.len() > 10_000, "a real map serializes to real bytes");
}

#[test]
fn fixed_map_roundtrips_through_bytes() {
    let dataset = DatasetKind::NewCollege.build_scaled(0.0005);
    let mut tree = OctreeFixed::new(0.2).unwrap();
    tree.set_max_range(Some(dataset.spec().max_range));
    for scan in dataset.scans() {
        tree.insert_scan(&scan).unwrap();
    }
    let restored = OctreeFixed::from_bytes(&tree.to_bytes()).unwrap();
    assert_eq!(restored.snapshot(), tree.snapshot());
}

#[test]
fn corrupted_maps_are_rejected_not_misread() {
    let mut tree = OctreeF32::new(0.2).unwrap();
    tree.update_point(Point3::new(1.0, 1.0, 1.0), true).unwrap();
    let bytes = tree.to_bytes();

    // Flipping the magic is detected.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert_eq!(
        OctreeF32::from_bytes(&bad).unwrap_err(),
        DeserializeError::BadMagic
    );

    // Any truncation is detected.
    for cut in [4, 10, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            OctreeF32::from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut}"
        );
    }

    // Garbage appended is detected.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[1, 2, 3]);
    assert!(OctreeF32::from_bytes(&padded).is_err());
}
