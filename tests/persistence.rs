//! Serialization across crates: maps built from dataset scans survive a
//! byte round-trip on both value representations.

use omu::datasets::DatasetKind;
use omu::geometry::Point3;
use omu::octree::{DeserializeError, OctreeF32, OctreeFixed};
use omu::raycast::IntegrationMode;

fn build<TreeInit>(init: TreeInit) -> Vec<u8>
where
    TreeInit: FnOnce(f64) -> Vec<u8>,
{
    init(0.2)
}

#[test]
fn float_map_roundtrips_through_bytes() {
    let bytes = build(|res| {
        let dataset = DatasetKind::Fr079Corridor.build_scaled(0.016);
        let mut tree = OctreeF32::new(res).unwrap();
        tree.set_integration_mode(IntegrationMode::Raywise);
        tree.set_max_range(Some(dataset.spec().max_range));
        for scan in dataset.scans() {
            tree.insert_scan(&scan).unwrap();
        }
        let encoded = tree.to_bytes();
        let restored = OctreeF32::from_bytes(&encoded).unwrap();
        assert_eq!(restored.snapshot(), tree.snapshot());
        assert_eq!(restored.num_nodes(), tree.num_nodes());
        // Queries survive.
        for p in [
            Point3::new(0.5, 0.0, 0.0),
            Point3::new(3.0, 1.0, 0.5),
            Point3::new(-5.0, -1.0, -0.5),
        ] {
            assert_eq!(
                restored.occupancy_at(p).unwrap(),
                tree.occupancy_at(p).unwrap()
            );
        }
        encoded
    });
    assert!(bytes.len() > 10_000, "a real map serializes to real bytes");
}

#[test]
fn fixed_map_roundtrips_through_bytes() {
    let dataset = DatasetKind::NewCollege.build_scaled(0.0005);
    let mut tree = OctreeFixed::new(0.2).unwrap();
    tree.set_max_range(Some(dataset.spec().max_range));
    for scan in dataset.scans() {
        tree.insert_scan(&scan).unwrap();
    }
    let restored = OctreeFixed::from_bytes(&tree.to_bytes()).unwrap();
    assert_eq!(restored.snapshot(), tree.snapshot());
}

/// Golden bytes emitted by the pre-sibling-row (block-arena) layout for
/// a deterministic f32 scan workload; see `tests/golden/`.
const GOLDEN_F32: &[u8] = include_bytes!("golden/map_f32_v1.omut");
/// Same, for a fixed-point update workload with pruning and misses.
const GOLDEN_FIXED: &[u8] = include_bytes!("golden/map_fixed_v1.omut");

/// Rebuilds the exact map the f32 golden snapshot was generated from.
fn golden_f32_workload() -> OctreeF32 {
    use omu::geometry::PointCloud;
    use omu::geometry::Scan;
    let mut t = OctreeF32::new(0.05).unwrap();
    let mut cloud = PointCloud::new();
    for i in 0..400 {
        let a = i as f64 * 0.0157;
        cloud.push(Point3::new(
            3.0 * a.cos(),
            3.0 * a.sin(),
            ((i % 16) as f64 - 8.0) * 0.1,
        ));
    }
    for step in 0..4 {
        let origin = Point3::new(0.02 * step as f64, 0.01 * step as f64, 0.0);
        t.insert_scan(&Scan::new(origin, cloud.clone())).unwrap();
    }
    t
}

/// Rebuilds the exact map the fixed-point golden snapshot was generated
/// from.
fn golden_fixed_workload() -> OctreeFixed {
    use omu::geometry::VoxelKey;
    let mut t = OctreeFixed::new(0.1).unwrap();
    t.set_early_abort_saturated(false);
    for i in 0..300u16 {
        let k = VoxelKey::new(
            32000 + (i * 7) % 97,
            33000 + (i * 13) % 89,
            31000 + (i * 3) % 53,
        );
        t.update_key(k, i % 4 != 0);
    }
    let base = VoxelKey::new(40000, 40000, 40000);
    for _ in 0..10 {
        for i in 0..8u16 {
            t.update_key(
                VoxelKey::new(
                    base.x + (i & 1),
                    base.y + ((i >> 1) & 1),
                    base.z + ((i >> 2) & 1),
                ),
                true,
            );
        }
    }
    t
}

#[test]
fn wire_format_is_byte_stable_against_block_arena_goldens() {
    // The sibling-row layout must emit byte-for-byte what the old
    // block-arena layout emitted for the same update sequences…
    let f = golden_f32_workload();
    assert_eq!(f.to_bytes(), GOLDEN_F32, "f32 wire format drifted");
    let q = golden_fixed_workload();
    assert_eq!(q.to_bytes(), GOLDEN_FIXED, "fixed wire format drifted");

    // …and maps saved by the old layout must load and re-save stably.
    let restored = OctreeF32::from_bytes(GOLDEN_F32).unwrap();
    assert_eq!(restored.snapshot(), f.snapshot());
    assert_eq!(restored.to_bytes(), GOLDEN_F32, "re-encode not stable");
    restored.debug_validate();

    let restored = OctreeFixed::from_bytes(GOLDEN_FIXED).unwrap();
    assert_eq!(restored.snapshot(), q.snapshot());
    assert_eq!(restored.to_bytes(), GOLDEN_FIXED, "re-encode not stable");
    restored.debug_validate();
}

#[test]
fn corrupted_maps_are_rejected_not_misread() {
    let mut tree = OctreeF32::new(0.2).unwrap();
    tree.update_point(Point3::new(1.0, 1.0, 1.0), true).unwrap();
    let bytes = tree.to_bytes();

    // Flipping the magic is detected.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert_eq!(
        OctreeF32::from_bytes(&bad).unwrap_err(),
        DeserializeError::BadMagic
    );

    // Any truncation is detected.
    for cut in [4, 10, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            OctreeF32::from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut}"
        );
    }

    // Garbage appended is detected.
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[1, 2, 3]);
    assert!(OctreeF32::from_bytes(&padded).is_err());
}
