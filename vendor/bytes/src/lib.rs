//! Offline shim for `bytes`: the `BytesMut`/`Buf`/`BufMut` subset the
//! octree serializer uses, with the real crate's big-endian defaults so
//! serialized maps stay byte-compatible if the real dependency returns.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// Write cursor over a growable buffer, mirroring `bytes::BufMut`.
///
/// Multi-byte values are big-endian, like the real crate's `put_*`
/// methods.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends an `f32` in big-endian byte order.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` in big-endian byte order.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian byte order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over a byte slice, mirroring `bytes::Buf`.
///
/// The `get_*` methods panic when the buffer is too short, exactly like
/// the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out the next `N` bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// True while at least one byte is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returns exactly N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR!");
        buf.put_u8(7);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        buf.put_u32(0xDEAD_BEEF);
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(&r[..4], b"HDR!");
        r.advance(4);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert!(!r.has_remaining());
    }

    #[test]
    fn big_endian_layout_matches_real_bytes_crate() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(buf.to_vec(), vec![0, 0, 0, 1]);
    }
}
