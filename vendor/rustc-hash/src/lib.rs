//! Offline shim for `rustc-hash`: the Fx (Firefox) multiply-rotate hash,
//! written from its published description. Fx trades SipHash's
//! flood-resistance for raw speed, which is the right trade for the
//! octree's internal voxel-key sets: keys are 48-bit structured values
//! produced by ray casting, not attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// The Fx hasher: per-word `rotate ^ xor, * K` mixing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, tail) = bytes.split_at(8);
            self.add_to_hash(u64::from_ne_bytes(head.try_into().expect("8 bytes")));
            bytes = tail;
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_ne_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_map_work() {
        let mut set: FxHashSet<(u16, u16, u16)> = FxHashSet::default();
        for x in 0..100u16 {
            set.insert((x, x.wrapping_mul(3), x ^ 0x55));
        }
        assert_eq!(set.len(), 100);
        assert!(set.contains(&(4, 12, 4 ^ 0x55)));

        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(&2));
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash_one = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_one(12345), hash_one(12345));
        // Nearby keys land far apart (the multiply diffuses low bits).
        let a = hash_one(1);
        let b = hash_one(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8);
    }
}
