//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` as format
//! markers — no code path serializes through serde — so empty expansions
//! keep the annotations compiling without the real dependency.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
