//! Offline shim for `criterion`: the API subset the bench targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `Bencher::iter`), measuring with plain wall-clock
//! timing.
//!
//! No statistics, HTML reports or regression tracking — each benchmark
//! warms up briefly, runs a calibrated number of iterations for roughly
//! `MEASURE_MS` milliseconds, and prints the mean time per iteration
//! (plus derived throughput when configured). Set `OMU_BENCH_MS` to
//! lengthen the measurement window for more stable numbers.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

const WARMUP_MS: u64 = 50;
const DEFAULT_MEASURE_MS: u64 = 300;

fn measure_window() -> Duration {
    let ms = std::env::var("OMU_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_MEASURE_MS);
    Duration::from_millis(ms.max(10))
}

/// Opaque value barrier, re-exported for call sites that use
/// `criterion::black_box` instead of `std::hint::black_box`.
pub fn black_box<T>(v: T) -> T {
    hint::black_box(v)
}

/// Work-per-iteration declaration used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark name, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like the real crate renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark timing driver handed to closures.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock nanoseconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many calls fit the window.
        let warmup = Duration::from_millis(WARMUP_MS);
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < warmup || calls == 0 {
            hint::black_box(routine());
            calls += 1;
        }
        let per_call = start.elapsed().as_secs_f64() / calls as f64;
        let window = measure_window().as_secs_f64();
        let target = ((window / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let start = Instant::now();
        for _ in 0..target {
            hint::black_box(routine());
        }
        let total = start.elapsed().as_secs_f64();
        self.mean_ns = total * 1e9 / target as f64;
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of the following
    /// benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by time, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id.into(), &b);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id.into(), &b);
        self
    }

    /// Ends the group (printing is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / b.mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.2} MiB/s)",
                    n as f64 / b.mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{}  time: {:.1} ns/iter{}",
            self.name, id.id, b.mean_ns, rate
        );
    }
}

/// The benchmark harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        println!("{}  time: {:.1} ns/iter", id.into().id, b.mean_ns);
        self
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Criterion-generated group runner (see the bench functions).
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("OMU_BENCH_MS", "10");
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("OMU_BENCH_MS", "10");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
