//! Offline shim for `proptest`: the `proptest!` / `prop_assert!` /
//! `prop_assume!` / `any::<T>()` subset the workspace uses, running each
//! property as a fixed number of deterministic random cases (seeded from
//! the test name, so failures reproduce exactly).
//!
//! Unsupported features of the real crate (shrinking, `prop_compose!`,
//! combinator strategies) are intentionally absent — a failing case prints
//! its inputs via the assertion message instead of shrinking them.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-property configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 48 keeps the tier-1 suite quick
        // while still exploring each property's input space.
        ProptestConfig { cases: 48 }
    }
}

/// The deterministic case generator handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test's name so every run of that test
    /// sees the identical case sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` without
/// shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Everything call sites need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __prop_rng = $crate::TestRng::deterministic(stringify!($name));
                for __prop_case in 0..config.cases {
                    $crate::__proptest_bindings!{ __prop_rng; $($params)* }
                    // The case body runs in a closure so `prop_assume!`
                    // can skip the case with a plain `return`.
                    #[allow(unused_mut)]
                    let mut __prop_run = move || { $body };
                    __prop_run();
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident; ) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!{ $rng; $($rest)* }
    };
}

/// `assert!` under a name the real proptest uses.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a name the real proptest uses.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -10i32..10, y in 0u16..100, f in -1.5f64..1.5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn any_assume_and_eq_work(v in any::<u16>()) {
            prop_assume!(v.is_multiple_of(2));
            prop_assert_eq!(v % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            let _ = x;
        }
    }
}
