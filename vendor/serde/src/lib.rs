//! Offline shim for `serde`: marker traits plus the no-op derive macros
//! from the sibling `serde_derive` shim. Swapping in the real serde later
//! requires no source changes in the workspace crates.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
