//! Offline shim for `rand` 0.9: the API subset the workspace uses
//! (`StdRng::seed_from_u64`, `Rng::random`/`random_range`/`random_bool`,
//! `seq::SliceRandom::shuffle`), backed by a SplitMix64-seeded
//! xoshiro256++ generator.
//!
//! The stream differs from the real `rand::rngs::StdRng` (ChaCha12), which
//! is fine: every consumer seeds explicitly and only relies on
//! *determinism*, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::random`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit: $t = Random::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit: $t = Random::random(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of an inferred type.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A value uniformly distributed over `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Random::random(self);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = rng.random_range(3u16..9);
            assert!((3..9).contains(&i));
            let n = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
